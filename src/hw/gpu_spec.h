#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hetpipe::hw {

// GPU classes known to the system. The first four are the paper's testbed
// (Table 1); further classes can be registered at runtime (RegisterGpuType,
// typically via hw::ClusterSpec) so experiments run on clusters the paper
// never measured. A GpuType value is a process-local handle; the stable
// cross-process identity of a class is its name (plus its numbers), which is
// what the disk partition cache records.
enum class GpuType {
  kTitanV,       // code 'V' — Volta,  5120 cores, 12 GB
  kTitanRtx,     // code 'R' — Turing, 4608 cores, 24 GB
  kRtx2060,      // code 'G' — Turing, 1920 cores,  6 GB (the "whimpy" one)
  kQuadroP4000,  // code 'Q' — Pascal, 1792 cores,  8 GB
};

// Number of built-in (Table 1) GPU classes.
inline constexpr int kNumGpuTypes = 4;

// Hardware description of a GPU class. Built-in entries come straight from
// Table 1; registered entries carry zeros for the fields a declarative spec
// does not name (cores, clocks, memory bandwidth).
struct GpuSpec {
  GpuType type;
  const char* name;  // owned by the registry; stable for the process lifetime
  char code;  // single-letter code used throughout the paper: V R G Q
  int cuda_cores;
  int boost_clock_mhz;
  double memory_gib;      // device memory capacity
  double memory_bw_gbps;  // device memory bandwidth
  // Sustained TFLOP/s on ResNet-class kernels. For the built-in types this is
  // the Fig. 3 calibration (see model/profiler.cc); for registered types it
  // is the declared throughput, and the one number the cost model runs on.
  double effective_tflops;
};

// Returns the spec for `type` (built-in or registered); throws
// std::invalid_argument for a handle no registration produced.
const GpuSpec& SpecOf(GpuType type);

// All known specs: the four Table 1 classes followed by registered classes in
// registration order.
std::vector<GpuSpec> AllGpuSpecs();

// Built-in classes plus registered ones; GpuType handles are the integers
// [0, NumGpuTypes()).
int NumGpuTypes();

// Registers a GPU class beyond Table 1 and returns its handle. Registration
// is idempotent: the same (name, effective_tflops, memory_gib) returns the
// existing handle; re-registering a name with different numbers throws.
// `code` is the display letter ('\0' auto-assigns an unused one); a code
// already taken by a different class falls back to auto-assignment. A name
// must be a nonempty run of [A-Za-z0-9_.-] and must not be a single built-in
// code letter. Thread-safe.
GpuType RegisterGpuType(const std::string& name, double effective_tflops, double memory_gib,
                        char code = '\0');

// Looks a class up by name (built-in names like "TITAN V" included).
// Returns nullptr when no such class is registered.
const GpuSpec* FindGpuTypeByName(std::string_view name);

char CodeOf(GpuType type);
// Parses a single-letter code ('V', 'R', 'G', 'Q', or a registered class's
// code); throws std::invalid_argument otherwise.
GpuType TypeFromCode(char code);

// Parses a configuration string such as "VVQQ" into GPU types.
std::vector<GpuType> ParseGpuCodes(std::string_view codes);
// Inverse of ParseGpuCodes.
std::string GpuCodes(const std::vector<GpuType>& types);

// Device memory capacity in bytes.
uint64_t MemoryBytes(GpuType type);

}  // namespace hetpipe::hw
