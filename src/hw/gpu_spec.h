#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hetpipe::hw {

// The four GPU classes of the paper's testbed (Table 1).
enum class GpuType {
  kTitanV,       // code 'V' — Volta,  5120 cores, 12 GB
  kTitanRtx,     // code 'R' — Turing, 4608 cores, 24 GB
  kRtx2060,      // code 'G' — Turing, 1920 cores,  6 GB (the "whimpy" one)
  kQuadroP4000,  // code 'Q' — Pascal, 1792 cores,  8 GB
};

inline constexpr int kNumGpuTypes = 4;

// Hardware description of a GPU class, straight from Table 1.
struct GpuSpec {
  GpuType type;
  const char* name;
  char code;  // single-letter code used throughout the paper: V R G Q
  int cuda_cores;
  int boost_clock_mhz;
  double memory_gib;      // device memory capacity
  double memory_bw_gbps;  // device memory bandwidth
};

// Returns the Table 1 spec for `type`.
const GpuSpec& SpecOf(GpuType type);

// All four specs, in Table 1 order.
const std::vector<GpuSpec>& AllGpuSpecs();

char CodeOf(GpuType type);
// Parses a single-letter code ('V', 'R', 'G', 'Q'); throws std::invalid_argument otherwise.
GpuType TypeFromCode(char code);

// Parses a configuration string such as "VVQQ" into GPU types.
std::vector<GpuType> ParseGpuCodes(std::string_view codes);
// Inverse of ParseGpuCodes.
std::string GpuCodes(const std::vector<GpuType>& types);

// Device memory capacity in bytes.
uint64_t MemoryBytes(GpuType type);

}  // namespace hetpipe::hw
