#include "hw/link.h"

namespace hetpipe::hw {

PcieLink::PcieLink(double peak_gbps, double scaling, double latency_s)
    : effective_bps_(peak_gbps * 1e9 * scaling), latency_s_(latency_s) {}

double PcieLink::TransferTime(uint64_t bytes) const {
  if (bytes == 0) {
    return 0.0;
  }
  return latency_s_ + static_cast<double>(bytes) / effective_bps_;
}

InfinibandLink::InfinibandLink(double raw_gbits, double efficiency, double intercept_s)
    : effective_bps_(raw_gbits / 8.0 * 1e9 * efficiency), intercept_s_(intercept_s) {}

double InfinibandLink::TransferTime(uint64_t bytes) const {
  if (bytes == 0) {
    return 0.0;
  }
  return intercept_s_ + static_cast<double>(bytes) / effective_bps_;
}

}  // namespace hetpipe::hw
