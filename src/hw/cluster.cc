#include "hw/cluster.h"

#include <sstream>

namespace hetpipe::hw {

Cluster::Cluster(const std::vector<GpuType>& node_types, int gpus_per_node)
    : node_types_(node_types),
      num_nodes_(static_cast<int>(node_types.size())),
      gpus_per_node_(gpus_per_node) {
  int id = 0;
  for (int n = 0; n < num_nodes_; ++n) {
    for (int g = 0; g < gpus_per_node_; ++g) {
      gpus_.push_back(Gpu{id++, node_types_[static_cast<size_t>(n)], n});
    }
  }
}

Cluster Cluster::Paper() { return PaperSubset("VRGQ"); }

Cluster Cluster::PaperSubset(const std::string& node_codes) {
  return Cluster(ParseGpuCodes(node_codes), /*gpus_per_node=*/4);
}

std::vector<int> Cluster::GpusOnNode(int node) const {
  std::vector<int> ids;
  for (const Gpu& g : gpus_) {
    if (g.node == node) {
      ids.push_back(g.id);
    }
  }
  return ids;
}

const LinkModel& Cluster::LinkBetween(int gpu_a, int gpu_b) const {
  if (SameNode(gpu_a, gpu_b)) {
    return pcie_;
  }
  return infiniband_;
}

const LinkModel& Cluster::LinkToNode(int gpu_id, int node) const {
  if (gpu(gpu_id).node == node) {
    return pcie_;
  }
  return infiniband_;
}

std::string Cluster::ToString() const {
  std::ostringstream os;
  os << num_nodes_ << " nodes x " << gpus_per_node_ << " GPUs [";
  for (int n = 0; n < num_nodes_; ++n) {
    if (n > 0) {
      os << '|';
    }
    for (int g = 0; g < gpus_per_node_; ++g) {
      os << CodeOf(node_types_[static_cast<size_t>(n)]);
    }
  }
  os << ']';
  return os.str();
}

}  // namespace hetpipe::hw
