#include "hw/cluster.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace hetpipe::hw {
namespace {

std::vector<NodeGpus> UniformNodes(const std::vector<GpuType>& node_types, int gpus_per_node) {
  std::vector<NodeGpus> nodes;
  nodes.reserve(node_types.size());
  for (GpuType type : node_types) {
    nodes.push_back(NodeGpus{type, gpus_per_node});
  }
  return nodes;
}

}  // namespace

Cluster::Cluster(const std::vector<GpuType>& node_types, int gpus_per_node)
    : Cluster(UniformNodes(node_types, gpus_per_node), PcieLink(), InfinibandLink()) {}

Cluster::Cluster(const std::vector<NodeGpus>& nodes, const PcieLink& pcie,
                 const InfinibandLink& infiniband, std::string name)
    : num_nodes_(static_cast<int>(nodes.size())),
      pcie_(pcie),
      infiniband_(infiniband),
      name_(std::move(name)) {
  int id = 0;
  for (int n = 0; n < num_nodes_; ++n) {
    const NodeGpus& node = nodes[static_cast<size_t>(n)];
    if (node.count <= 0) {
      throw std::invalid_argument("cluster node " + std::to_string(n) +
                                  " must hold at least one GPU");
    }
    node_types_.push_back(node.type);
    node_counts_.push_back(node.count);
    gpus_per_node_ = std::max(gpus_per_node_, node.count);
    for (int g = 0; g < node.count; ++g) {
      gpus_.push_back(Gpu{id++, node.type, n});
    }
  }
  for (int count : node_counts_) {
    uniform_ = uniform_ && count == gpus_per_node_;
  }
}

Cluster Cluster::Paper() { return PaperSubset("VRGQ"); }

Cluster Cluster::PaperSubset(const std::string& node_codes) {
  return Cluster(ParseGpuCodes(node_codes), /*gpus_per_node=*/4);
}

std::vector<int> Cluster::GpusOnNode(int node) const {
  std::vector<int> ids;
  for (const Gpu& g : gpus_) {
    if (g.node == node) {
      ids.push_back(g.id);
    }
  }
  return ids;
}

const LinkModel& Cluster::LinkBetween(int gpu_a, int gpu_b) const {
  if (SameNode(gpu_a, gpu_b)) {
    return pcie_;
  }
  return infiniband_;
}

const LinkModel& Cluster::LinkToNode(int gpu_id, int node) const {
  if (gpu(gpu_id).node == node) {
    return pcie_;
  }
  return infiniband_;
}

std::string Cluster::ToString() const {
  std::ostringstream os;
  bool paper_classes = true;
  for (GpuType type : node_types_) {
    paper_classes = paper_classes && static_cast<int>(type) < kNumGpuTypes;
  }
  if (uniform_ && paper_classes) {
    os << num_nodes_ << " nodes x " << gpus_per_node_ << " GPUs [";
    for (int n = 0; n < num_nodes_; ++n) {
      if (n > 0) {
        os << '|';
      }
      for (int g = 0; g < node_counts_[static_cast<size_t>(n)]; ++g) {
        os << CodeOf(node_types_[static_cast<size_t>(n)]);
      }
    }
    os << ']';
    return os.str();
  }
  os << num_nodes_ << " nodes [";
  for (int n = 0; n < num_nodes_; ++n) {
    if (n > 0) {
      os << '|';
    }
    os << SpecOf(node_types_[static_cast<size_t>(n)]).name << " x"
       << node_counts_[static_cast<size_t>(n)];
  }
  os << ']';
  return os.str();
}

}  // namespace hetpipe::hw
