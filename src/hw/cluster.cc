#include "hw/cluster.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace hetpipe::hw {
namespace {

std::vector<NodeGpus> UniformNodes(const std::vector<GpuType>& node_types, int gpus_per_node) {
  std::vector<NodeGpus> nodes;
  nodes.reserve(node_types.size());
  for (GpuType type : node_types) {
    nodes.push_back(NodeGpus{type, gpus_per_node});
  }
  return nodes;
}

std::vector<std::vector<GpuType>> ExpandNodes(const std::vector<NodeGpus>& nodes) {
  std::vector<std::vector<GpuType>> node_gpus;
  node_gpus.reserve(nodes.size());
  for (const NodeGpus& node : nodes) {
    node_gpus.emplace_back(static_cast<size_t>(std::max(node.count, 0)), node.type);
  }
  return node_gpus;
}

}  // namespace

Cluster::Cluster(const std::vector<GpuType>& node_types, int gpus_per_node)
    : Cluster(UniformNodes(node_types, gpus_per_node), PcieLink(), InfinibandLink()) {}

Cluster::Cluster(const std::vector<NodeGpus>& nodes, const PcieLink& pcie,
                 const InfinibandLink& infiniband, std::string name)
    : Cluster(ExpandNodes(nodes), pcie, infiniband, std::move(name)) {}

Cluster::Cluster(const std::vector<std::vector<GpuType>>& node_gpus, const PcieLink& pcie,
                 const InfinibandLink& infiniband, std::string name)
    : num_nodes_(static_cast<int>(node_gpus.size())),
      pcie_(pcie),
      infiniband_(infiniband),
      name_(std::move(name)) {
  int id = 0;
  for (int n = 0; n < num_nodes_; ++n) {
    const std::vector<GpuType>& types = node_gpus[static_cast<size_t>(n)];
    if (types.empty()) {
      throw std::invalid_argument("cluster node " + std::to_string(n) +
                                  " must hold at least one GPU");
    }
    node_types_.push_back(types.front());
    node_homogeneous_.push_back(
        std::all_of(types.begin(), types.end(), [&](GpuType t) { return t == types.front(); }));
    node_counts_.push_back(static_cast<int>(types.size()));
    gpus_per_node_ = std::max(gpus_per_node_, static_cast<int>(types.size()));
    for (GpuType type : types) {
      gpus_.push_back(Gpu{id++, type, n});
    }
  }
  for (int count : node_counts_) {
    uniform_ = uniform_ && count == gpus_per_node_;
  }
}

Cluster Cluster::Paper() { return PaperSubset("VRGQ"); }

Cluster Cluster::PaperSubset(const std::string& node_codes) {
  return Cluster(ParseGpuCodes(node_codes), /*gpus_per_node=*/4);
}

std::vector<int> Cluster::GpusOnNode(int node) const {
  std::vector<int> ids;
  for (const Gpu& g : gpus_) {
    if (g.node == node) {
      ids.push_back(g.id);
    }
  }
  return ids;
}

void Cluster::SetLinkTopology(std::vector<int> rack_of_node,
                              std::vector<InfinibandLink> pair_links,
                              std::vector<int> pair_link_index) {
  const size_t nodes = static_cast<size_t>(num_nodes_);
  if (!rack_of_node.empty() && rack_of_node.size() != nodes) {
    throw std::invalid_argument("link topology: rack_of_node must name every node");
  }
  if (!pair_link_index.empty() && pair_link_index.size() != nodes * nodes) {
    throw std::invalid_argument("link topology: pair_link_index must cover every node pair");
  }
  for (int index : pair_link_index) {
    if (index < -1 || index >= static_cast<int>(pair_links.size())) {
      throw std::invalid_argument("link topology: pair link index out of range");
    }
  }
  rack_of_node_ = std::move(rack_of_node);
  pair_links_ = std::move(pair_links);
  pair_link_index_ = std::move(pair_link_index);
}

const LinkModel& Cluster::LinkBetweenNodes(int node_a, int node_b) const {
  if (node_a == node_b) {
    return pcie_;
  }
  if (pair_link_index_.empty()) {
    return infiniband_;
  }
  const int index = pair_link_index_.at(static_cast<size_t>(node_a) *
                                            static_cast<size_t>(num_nodes_) +
                                        static_cast<size_t>(node_b));
  return index < 0 ? static_cast<const LinkModel&>(infiniband_)
                   : pair_links_[static_cast<size_t>(index)];
}

double Cluster::WorstInterTransferTimeFrom(int node, uint64_t bytes) const {
  if (pair_link_index_.empty() || num_nodes_ < 2) {
    return infiniband_.TransferTime(bytes);
  }
  double worst_s = 0.0;
  for (int peer = 0; peer < num_nodes_; ++peer) {
    if (peer != node) {
      worst_s = std::max(worst_s, LinkBetweenNodes(node, peer).TransferTime(bytes));
    }
  }
  return worst_s;
}

const LinkModel& Cluster::LinkBetween(int gpu_a, int gpu_b) const {
  return LinkBetweenNodes(gpu(gpu_a).node, gpu(gpu_b).node);
}

const LinkModel& Cluster::LinkToNode(int gpu_id, int node) const {
  return LinkBetweenNodes(gpu(gpu_id).node, node);
}

std::string Cluster::ToString() const {
  std::ostringstream os;
  bool paper_classes = true;
  for (const Gpu& g : gpus_) {
    paper_classes = paper_classes && static_cast<int>(g.type) < kNumGpuTypes;
  }
  if (uniform_ && paper_classes) {
    os << num_nodes_ << " nodes x " << gpus_per_node_ << " GPUs [";
    for (const Gpu& g : gpus_) {
      if (g.id > 0 && g.node != gpu(g.id - 1).node) {
        os << '|';
      }
      os << CodeOf(g.type);
    }
    os << ']';
    return os.str();
  }
  os << num_nodes_ << " nodes [";
  for (int n = 0; n < num_nodes_; ++n) {
    if (n > 0) {
      os << '|';
    }
    // Each node lists its class runs ("A100 x2 + T4 x2"), so two clusters
    // differing only in a node's class mix never share a ToString.
    const std::vector<int> ids = GpusOnNode(n);
    size_t i = 0;
    bool first_run = true;
    while (i < ids.size()) {
      const GpuType type = gpu(ids[i]).type;
      size_t run = 0;
      while (i + run < ids.size() && gpu(ids[i + run]).type == type) {
        ++run;
      }
      if (!first_run) {
        os << " + ";
      }
      first_run = false;
      os << SpecOf(type).name << " x" << run;
      i += run;
    }
  }
  os << ']';
  return os.str();
}

}  // namespace hetpipe::hw
