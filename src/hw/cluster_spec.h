#pragma once

#include <string>
#include <vector>

#include "hw/cluster.h"

namespace hetpipe::hw {

// A GPU class declared by a spec (beyond the paper's Table 1): the sustained
// compute throughput and device memory the cost model needs, nothing more.
// A class name is a process-wide identity: every spec in one process must
// agree on a name's numbers (the registry rejects conflicting
// redefinitions), so sensitivity sweeps over a class's TFLOPS/memory should
// use distinct names ("A100-18", "A100-20").
struct GpuClassDecl {
  std::string name;
  double tflops = 0.0;      // sustained TFLOP/s on ResNet-class kernels
  double memory_gib = 0.0;  // device memory capacity
  char code = '\0';         // optional display letter ('\0' auto-assigns)
};

// One node declaration: `count` GPUs of class `type` (a declared class name,
// a built-in class name, or a single built-in code letter V/R/G/Q).
struct NodeDecl {
  std::string type;
  int count = 1;
};

// Declarative description of an arbitrary heterogeneous cluster: GPU classes
// with TFLOPS/memory, per-node GPU counts, and intra-/inter-node link
// bandwidths. This is the "any cluster you can imagine" entry point the
// experiment pipeline runs on — the paper's fixed 4 x 4 testbed is just
// PaperTestbed().
//
// Compact text form: statements separated by newlines or ';', tokens by
// whitespace, '#' comments to end of line.
//
//   name edge-mix
//   gpu A100 tflops=18 mem=40 code=a
//   gpu T4  tflops=4.1 mem=16
//   node 2xA100          # 2 GPUs of class A100
//   node 4xT4
//   node 4xV             # built-in paper classes by code letter
//   intra_gbps 12        # intra-node link peak, GB/s  (default: PCIe 3.0 x16)
//   inter_gbits 25       # inter-node link rate, Gbit/s (default: 56G IB FDR)
//
// ToString() emits canonical single-line text ("; "-separated) that Parse()
// round-trips, so a core::Experiment can carry a whole cluster as one string
// field across threads and processes.
struct ClusterSpec {
  std::string name;
  std::vector<GpuClassDecl> gpu_classes;
  std::vector<NodeDecl> nodes;
  double intra_gbps = PcieLink::kDefaultPeakGBps;
  double inter_gbits = InfinibandLink::kDefaultRawGbits;

  // Chainable builder API.
  ClusterSpec& Named(std::string label);
  ClusterSpec& AddGpuClass(std::string class_name, double tflops, double memory_gib,
                           char code = '\0');
  ClusterSpec& AddNode(std::string type, int count = 1);
  ClusterSpec& IntraGbps(double gbps);
  ClusterSpec& InterGbits(double gbits);

  // Parses the text form; throws std::invalid_argument (with the offending
  // statement in the message) on malformed input. The result is validated.
  static ClusterSpec Parse(const std::string& text);

  // The paper's 4-node x 4-GPU testbed as a spec; Build() of this is
  // equivalent to hw::Cluster::Paper().
  static ClusterSpec PaperTestbed();

  // Canonical text form (see above); Parse(ToString()) == *this.
  std::string ToString() const;

  // Throws std::invalid_argument on an unknown GPU type, a zero-GPU node, a
  // non-positive bandwidth/TFLOPS/memory, duplicate class names, or an empty
  // node list.
  void Validate() const;

  // Registers the declared GPU classes and materializes the cluster (with
  // spec_text() set to ToString() so experiments can rebuild it anywhere).
  // Validates first.
  Cluster Build() const;
};

bool operator==(const GpuClassDecl& a, const GpuClassDecl& b);
bool operator==(const NodeDecl& a, const NodeDecl& b);
bool operator==(const ClusterSpec& a, const ClusterSpec& b);

}  // namespace hetpipe::hw
