#pragma once

#include <string>
#include <vector>

#include "hw/cluster.h"

namespace hetpipe::hw {

// A GPU class declared by a spec (beyond the paper's Table 1): the sustained
// compute throughput and device memory the cost model needs, nothing more.
// A class name is a process-wide identity: every spec in one process must
// agree on a name's numbers (the registry rejects conflicting
// redefinitions), so sensitivity sweeps over a class's TFLOPS/memory should
// use distinct names ("A100-18", "A100-20").
struct GpuClassDecl {
  std::string name;
  double tflops = 0.0;      // sustained TFLOP/s on ResNet-class kernels
  double memory_gib = 0.0;  // device memory capacity
  char code = '\0';         // optional display letter ('\0' auto-assigns)
};

// One homogeneous run of a node declaration: `count` GPUs of class `type` (a
// declared class name, a built-in class name, or a single built-in code
// letter V/R/G/Q).
struct NodeGroup {
  std::string type;
  int count = 1;
};

// One node declaration: an ordered list of class groups. Homogeneous nodes
// have one group; mixed-class nodes ("node{V100*2,K80*2}") have several, and
// the group order is the GPU-id order inside the node (which the ED allocator
// and fixed-order partitions observe).
struct NodeDecl {
  std::vector<NodeGroup> groups;

  NodeDecl() = default;
  NodeDecl(std::string type, int count) : groups{{std::move(type), count}} {}
  explicit NodeDecl(std::vector<NodeGroup> node_groups) : groups(std::move(node_groups)) {}

  bool mixed() const { return groups.size() > 1; }
  int TotalCount() const;
};

// Declarative description of an arbitrary heterogeneous cluster: GPU classes
// with TFLOPS/memory, per-node GPU counts (mixed classes allowed within one
// node), and intra-/inter-node link models including their latency/intercept
// and scaling/efficiency knobs. This is the "any cluster you can imagine"
// entry point the experiment pipeline runs on — the paper's fixed 4 x 4
// testbed is just PaperTestbed().
//
// Compact text form: statements separated by newlines or ';', tokens by
// whitespace, '#' comments to end of line.
//
//   name edge-mix
//   gpu A100 tflops=18 mem=40 code=a
//   gpu T4  tflops=4.1 mem=16
//   node 2xA100             # 2 GPUs of class A100
//   node{A100*2,T4*2}       # mixed-class node: 2 A100s then 2 T4s
//   node 4xV                # built-in paper classes by code letter
//   intra_gbps 12           # intra-node link peak, GB/s  (default: PCIe 3.0 x16)
//   intra_scaling 0.5       # achievable fraction of that peak
//   intra_latency_s 2e-05   # per-transfer setup cost, seconds
//   inter_gbits 25          # inter-node link rate, Gbit/s (default: 56G IB FDR)
//   inter_efficiency 0.2    # achieved fraction of the line rate (regression slope)
//   inter_intercept_s 5e-04 # per-transfer regression intercept, seconds
//
// ToString() emits canonical single-line text ("; "-separated) that Parse()
// round-trips, so a core::Experiment can carry a whole cluster as one string
// field across threads and processes. Link knobs are emitted only when they
// differ from the defaults, so paper-testbed specs stay bit-identical.
struct ClusterSpec {
  std::string name;
  std::vector<GpuClassDecl> gpu_classes;
  std::vector<NodeDecl> nodes;
  double intra_gbps = PcieLink::kDefaultPeakGBps;
  double intra_scaling = PcieLink::kDefaultScaling;
  double intra_latency_s = PcieLink::kDefaultLatency;
  double inter_gbits = InfinibandLink::kDefaultRawGbits;
  double inter_efficiency = InfinibandLink::kDefaultEfficiency;
  double inter_intercept_s = InfinibandLink::kDefaultIntercept;

  // Chainable builder API.
  ClusterSpec& Named(std::string label);
  ClusterSpec& AddGpuClass(std::string class_name, double tflops, double memory_gib,
                           char code = '\0');
  ClusterSpec& AddNode(std::string type, int count = 1);
  // Mixed-class node: the groups' order is the GPU order inside the node.
  ClusterSpec& AddMixedNode(std::vector<NodeGroup> groups);
  ClusterSpec& IntraGbps(double gbps);
  ClusterSpec& IntraScaling(double scaling);
  ClusterSpec& IntraLatencyS(double latency_s);
  ClusterSpec& InterGbits(double gbits);
  ClusterSpec& InterEfficiency(double efficiency);
  ClusterSpec& InterInterceptS(double intercept_s);

  // The spec's link models (what Build() hands the cluster).
  PcieLink IntraLink() const { return PcieLink(intra_gbps, intra_scaling, intra_latency_s); }
  InfinibandLink InterLink() const {
    return InfinibandLink(inter_gbits, inter_efficiency, inter_intercept_s);
  }

  // Parses the text form; throws std::invalid_argument (with the offending
  // statement in the message) on malformed input. The result is validated.
  static ClusterSpec Parse(const std::string& text);

  // The paper's 4-node x 4-GPU testbed as a spec; Build() of this is
  // equivalent to hw::Cluster::Paper().
  static ClusterSpec PaperTestbed();

  // Canonical text form (see above); Parse(ToString()) == *this.
  std::string ToString() const;

  // Throws std::invalid_argument on an unknown GPU type, a zero-GPU node or
  // node group, an out-of-range link knob, a non-positive TFLOPS/memory,
  // duplicate class names, or an empty node list.
  void Validate() const;

  // Registers the declared GPU classes and materializes the cluster (with
  // spec_text() set to ToString() so experiments can rebuild it anywhere).
  // Validates first.
  Cluster Build() const;
};

bool operator==(const GpuClassDecl& a, const GpuClassDecl& b);
bool operator==(const NodeGroup& a, const NodeGroup& b);
bool operator==(const NodeDecl& a, const NodeDecl& b);
bool operator==(const ClusterSpec& a, const ClusterSpec& b);

}  // namespace hetpipe::hw
