#pragma once

#include <optional>
#include <string>
#include <vector>

#include "hw/cluster.h"

namespace hetpipe::hw {

// A GPU class declared by a spec (beyond the paper's Table 1): the sustained
// compute throughput and device memory the cost model needs, nothing more.
// A class name is a process-wide identity: every spec in one process must
// agree on a name's numbers (the registry rejects conflicting
// redefinitions), so sensitivity sweeps over a class's TFLOPS/memory should
// use distinct names ("A100-18", "A100-20").
struct GpuClassDecl {
  std::string name;
  double tflops = 0.0;      // sustained TFLOP/s on ResNet-class kernels
  double memory_gib = 0.0;  // device memory capacity
  char code = '\0';         // optional display letter ('\0' auto-assigns)
};

// One homogeneous run of a node declaration: `count` GPUs of class `type` (a
// declared class name, a built-in class name, or a single built-in code
// letter V/R/G/Q).
struct NodeGroup {
  std::string type;
  int count = 1;
};

// One node declaration: an ordered list of class groups. Homogeneous nodes
// have one group; mixed-class nodes ("node{V100*2,K80*2}") have several, and
// the group order is the GPU-id order inside the node (which the ED allocator
// and fixed-order partitions observe).
struct NodeDecl {
  std::vector<NodeGroup> groups;

  NodeDecl() = default;
  NodeDecl(std::string type, int count) : groups{{std::move(type), count}} {}
  explicit NodeDecl(std::vector<NodeGroup> node_groups) : groups(std::move(node_groups)) {}

  bool mixed() const { return groups.size() > 1; }
  int TotalCount() const;
};

// One rack declaration: a named group of node indices ("rack r0 { node0
// node1 }"). Rack membership shapes the inter-node fabric: node pairs in
// different racks use the cross_rack_* link knobs (which default to the
// inter_* values), so a spec with racks but no cross-rack knob is
// link-identical to the same spec without racks. A node not named by any
// rack forms its own implicit single-node rack.
struct RackDecl {
  std::string name;
  std::vector<int> nodes;  // node indices, in declaration order
};

// One per-node-pair link override ("link node0<->node2 gbits 10
// efficiency 0.2 intercept_s 5e-4"). The pair is unordered (canonicalized
// node_a < node_b); unset fields inherit the pair's base link (the
// cross-rack link when the pair crosses racks, the inter link otherwise).
struct LinkOverrideDecl {
  int node_a = -1;
  int node_b = -1;
  std::optional<double> gbits;
  std::optional<double> efficiency;
  std::optional<double> intercept_s;
};

// Declarative description of an arbitrary heterogeneous cluster: GPU classes
// with TFLOPS/memory, per-node GPU counts (mixed classes allowed within one
// node), intra-/inter-node link models including their latency/intercept
// and scaling/efficiency knobs, and a rack-structured inter-node fabric
// (rack groups, cross-rack link knobs, per-node-pair overrides). This is the
// "any cluster you can imagine" entry point the experiment pipeline runs on
// — the paper's fixed 4 x 4 testbed is just PaperTestbed().
//
// Compact text form: statements separated by newlines or ';', tokens by
// whitespace, '#' comments to end of line.
//
//   name edge-mix
//   gpu A100 tflops=18 mem=40 code=a
//   gpu T4  tflops=4.1 mem=16
//   node 2xA100             # 2 GPUs of class A100
//   node{A100*2,T4*2}       # mixed-class node: 2 A100s then 2 T4s
//   node 4xV                # built-in paper classes by code letter
//   intra_gbps 12           # intra-node link peak, GB/s  (default: PCIe 3.0 x16)
//   intra_scaling 0.5       # achievable fraction of that peak
//   intra_latency_s 2e-05   # per-transfer setup cost, seconds
//   inter_gbits 25          # inter-node link rate, Gbit/s (default: 56G IB FDR)
//   inter_efficiency 0.2    # achieved fraction of the line rate (regression slope)
//   inter_intercept_s 5e-04 # per-transfer regression intercept, seconds
//   rack r0 { node0 node1 } # rack group (nodes by index; at most one rack each)
//   rack r1 { node2 }
//   cross_rack_gbits 10     # link rate between racks (default: inter_gbits)
//   cross_rack_efficiency 0.15   # (default: inter_efficiency)
//   cross_rack_intercept_s 5e-4  # (default: inter_intercept_s)
//   link node0<->node2 gbits 5 efficiency 0.1 intercept_s 1e-3
//                           # per-pair override; each key optional, unset
//                           # keys inherit the pair's base (cross-)rack link
//
// ToString() emits canonical single-line text ("; "-separated) that Parse()
// round-trips, so a core::Experiment can carry a whole cluster as one string
// field across threads and processes. Link knobs are emitted only when they
// differ from the defaults, so paper-testbed specs stay bit-identical.
struct ClusterSpec {
  std::string name;
  std::vector<GpuClassDecl> gpu_classes;
  std::vector<NodeDecl> nodes;
  double intra_gbps = PcieLink::kDefaultPeakGBps;
  double intra_scaling = PcieLink::kDefaultScaling;
  double intra_latency_s = PcieLink::kDefaultLatency;
  double inter_gbits = InfinibandLink::kDefaultRawGbits;
  double inter_efficiency = InfinibandLink::kDefaultEfficiency;
  double inter_intercept_s = InfinibandLink::kDefaultIntercept;
  std::vector<RackDecl> racks;
  std::vector<LinkOverrideDecl> link_overrides;
  // Cross-rack link knobs; an unset knob inherits the matching inter_* value,
  // so racks alone (no knob set) leave the fabric link-identical.
  std::optional<double> cross_rack_gbits;
  std::optional<double> cross_rack_efficiency;
  std::optional<double> cross_rack_intercept_s;

  // Chainable builder API.
  ClusterSpec& Named(std::string label);
  ClusterSpec& AddGpuClass(std::string class_name, double tflops, double memory_gib,
                           char code = '\0');
  ClusterSpec& AddNode(std::string type, int count = 1);
  // Mixed-class node: the groups' order is the GPU order inside the node.
  ClusterSpec& AddMixedNode(std::vector<NodeGroup> groups);
  ClusterSpec& IntraGbps(double gbps);
  ClusterSpec& IntraScaling(double scaling);
  ClusterSpec& IntraLatencyS(double latency_s);
  ClusterSpec& InterGbits(double gbits);
  ClusterSpec& InterEfficiency(double efficiency);
  ClusterSpec& InterInterceptS(double intercept_s);
  // Rack topology: groups `node_indices` under `rack_name`.
  ClusterSpec& AddRack(std::string rack_name, std::vector<int> node_indices);
  ClusterSpec& CrossRackGbits(double gbits);
  ClusterSpec& CrossRackEfficiency(double efficiency);
  ClusterSpec& CrossRackInterceptS(double intercept_s);
  // Per-pair override; pass std::nullopt for fields that should inherit the
  // pair's base link (at least one field must be set).
  ClusterSpec& OverrideLink(int node_a, int node_b, std::optional<double> gbits,
                            std::optional<double> efficiency = std::nullopt,
                            std::optional<double> intercept_s = std::nullopt);

  // The spec's link models (what Build() hands the cluster).
  PcieLink IntraLink() const { return PcieLink(intra_gbps, intra_scaling, intra_latency_s); }
  InfinibandLink InterLink() const {
    return InfinibandLink(inter_gbits, inter_efficiency, inter_intercept_s);
  }
  // The resolved inter-node link for a specific pair: the inter link, with
  // cross_rack_* knobs applied when the nodes sit in different racks and the
  // pair's explicit override (if any) applied on top. Requires a validated
  // spec; node indices are range-checked.
  InfinibandLink InterLinkBetween(int node_a, int node_b) const;

  // Parses the text form; throws std::invalid_argument (with the offending
  // statement in the message) on malformed input. The result is validated.
  static ClusterSpec Parse(const std::string& text);

  // The paper's 4-node x 4-GPU testbed as a spec; Build() of this is
  // equivalent to hw::Cluster::Paper().
  static ClusterSpec PaperTestbed();

  // Canonical text form (see above); Parse(ToString()) == *this.
  std::string ToString() const;

  // Throws std::invalid_argument on an unknown GPU type, a zero-GPU node or
  // node group, an out-of-range link knob, a non-positive TFLOPS/memory,
  // duplicate class names, an empty node list, a rack naming an out-of-range
  // or twice-racked node, a cross-rack knob without racks, or a malformed
  // link override (self pair, out-of-range node, duplicate pair, no fields,
  // out-of-range values).
  void Validate() const;

  // Registers the declared GPU classes and materializes the cluster (with
  // spec_text() set to ToString() so experiments can rebuild it anywhere).
  // Validates first.
  Cluster Build() const;
};

bool operator==(const GpuClassDecl& a, const GpuClassDecl& b);
bool operator==(const NodeGroup& a, const NodeGroup& b);
bool operator==(const NodeDecl& a, const NodeDecl& b);
bool operator==(const RackDecl& a, const RackDecl& b);
bool operator==(const LinkOverrideDecl& a, const LinkOverrideDecl& b);
bool operator==(const ClusterSpec& a, const ClusterSpec& b);

}  // namespace hetpipe::hw
