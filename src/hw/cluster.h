#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/gpu_spec.h"
#include "hw/link.h"

namespace hetpipe::hw {

// A physical GPU: identity plus its node placement.
struct Gpu {
  int id = -1;        // global id, unique within the cluster
  GpuType type = GpuType::kTitanV;
  int node = -1;      // node the GPU lives in
};

// One homogeneous group of `count` GPUs of one class inside a node.
struct NodeGpus {
  GpuType type = GpuType::kTitanV;
  int count = 0;
};

// A cluster of H nodes; a node may hold GPUs of several classes (mixed-class
// nodes), and nodes may differ from one another in GPU classes and counts
// (Fig. 2 of the paper is the uniform homogeneous 4 x 4 special case). Built
// either from the paper testbed helpers below or from a declarative
// hw::ClusterSpec, which may also supply non-default intra-/inter-node link
// models.
class Cluster {
 public:
  // Builds a cluster with one entry per node; entry i is the GPU type of node
  // i, replicated `gpus_per_node` times. Paper-default links.
  Cluster(const std::vector<GpuType>& node_types, int gpus_per_node);

  // One homogeneous GPU group per node, plus explicit link models. `name`
  // labels the cluster in reports ("" for anonymous).
  Cluster(const std::vector<NodeGpus>& nodes, const PcieLink& pcie,
          const InfinibandLink& infiniband, std::string name = "");

  // Fully general form: node i holds exactly node_gpus[i], in that order
  // (classes may repeat and mix freely within a node).
  Cluster(const std::vector<std::vector<GpuType>>& node_gpus, const PcieLink& pcie,
          const InfinibandLink& infiniband, std::string name = "");

  // The paper's testbed: 4 nodes x 4 GPUs = V-node, R-node, G-node, Q-node,
  // PCIe 3.0 x16 inside a node, 56 Gbps Infiniband between nodes.
  static Cluster Paper();

  // A cluster restricted to the first `num_nodes` node types of the paper
  // testbed, used for the Table 4 scaling study (4[V], 8[VR], 12[VRQ], ...).
  static Cluster PaperSubset(const std::string& node_codes);

  int num_nodes() const { return num_nodes_; }
  // Largest per-node GPU count (the common count on uniform clusters).
  int gpus_per_node() const { return gpus_per_node_; }
  int NodeGpuCount(int node) const {
    return node_counts_.at(static_cast<size_t>(node));
  }
  // True when every node holds the same number of GPUs.
  bool UniformGpusPerNode() const { return uniform_; }
  int num_gpus() const { return static_cast<int>(gpus_.size()); }

  const Gpu& gpu(int id) const { return gpus_.at(static_cast<size_t>(id)); }
  const std::vector<Gpu>& gpus() const { return gpus_; }
  std::vector<int> GpusOnNode(int node) const;
  // Class of the node's first GPU — the node's class on homogeneous nodes.
  // Callers that care about mixed-class nodes must check NodeHomogeneous.
  GpuType NodeType(int node) const { return node_types_.at(static_cast<size_t>(node)); }
  // True when every GPU of `node` is of one class.
  bool NodeHomogeneous(int node) const {
    return node_homogeneous_.at(static_cast<size_t>(node));
  }

  bool SameNode(int gpu_a, int gpu_b) const { return gpu(gpu_a).node == gpu(gpu_b).node; }

  // Rack of `node` (0-based), or -1 when the cluster has no rack structure.
  int NodeRack(int node) const {
    return rack_of_node_.empty() ? -1 : rack_of_node_.at(static_cast<size_t>(node));
  }
  // True when both nodes sit in one rack — also when there is no rack
  // structure at all (one implicit rack).
  bool SameRack(int node_a, int node_b) const {
    return rack_of_node_.empty() || NodeRack(node_a) == NodeRack(node_b);
  }
  // True when every inter-node pair uses the one shared inter link (no rack
  // degradation and no per-pair overrides); such clusters behave exactly as
  // before topology support existed.
  bool UniformFabric() const { return pair_link_index_.empty(); }

  // Rack membership and per-node-pair inter links, set by ClusterSpec::Build
  // (a cluster without them is a uniform fabric). `rack_of_node` is empty or
  // one rack id per node; `pair_link_index` is empty or num_nodes^2 entries
  // (row-major, symmetric) indexing `pair_links`, -1 selecting the shared
  // inter link.
  void SetLinkTopology(std::vector<int> rack_of_node, std::vector<InfinibandLink> pair_links,
                       std::vector<int> pair_link_index);

  // Link used between two GPUs: PCIe-class within a node, the pair's
  // network link across nodes.
  const LinkModel& LinkBetween(int gpu_a, int gpu_b) const;
  // Link between a GPU and a (parameter-server) process on node `node`.
  const LinkModel& LinkToNode(int gpu_id, int node) const;
  // The resolved link between two nodes: PCIe-class when equal, else the
  // pair's inter-node link (explicit override, cross-rack, or shared inter).
  const LinkModel& LinkBetweenNodes(int node_a, int node_b) const;
  // Slowest inter-node transfer of `bytes` out of `node` across its resolved
  // pair links — the conservative funnel bound used by the PS comm model and
  // the aggregate dp baselines (a node's remote traffic fans out to every
  // other node, so the worst link bounds it). Bit-identical to
  // infiniband().TransferTime(bytes) on a uniform fabric, including the
  // degenerate single-node cluster.
  double WorstInterTransferTimeFrom(int node, uint64_t bytes) const;

  const PcieLink& pcie() const { return pcie_; }
  const InfinibandLink& infiniband() const { return infiniband_; }

  // Spec label and canonical spec text when built from a hw::ClusterSpec
  // (empty otherwise). The text is what a core::Experiment carries so a sweep
  // task can rebuild this cluster on any thread or in any process.
  const std::string& name() const { return name_; }
  const std::string& spec_text() const { return spec_text_; }
  void set_spec_text(std::string text) { spec_text_ = std::move(text); }

  // Human-readable summary: "4 nodes x 4 GPUs [VVVV|RRRR|GGGG|QQQQ]" for
  // uniform paper-class clusters, "3 nodes [A100 x4|A100 x2 + T4 x2|T4 x8]"
  // in general (mixed-class nodes list each class run). Stable across
  // processes (class names, not handles), so the partition cache can key on
  // it — mixed-class compositions must therefore be spelled out faithfully.
  std::string ToString() const;

 private:
  std::vector<GpuType> node_types_;
  std::vector<bool> node_homogeneous_;
  std::vector<int> node_counts_;
  int num_nodes_ = 0;
  int gpus_per_node_ = 0;
  bool uniform_ = true;
  std::vector<Gpu> gpus_;
  PcieLink pcie_;
  InfinibandLink infiniband_;
  // Rack ids per node (empty: no rack structure) and the pair-resolved inter
  // links (empty: uniform fabric, every pair shares infiniband_).
  std::vector<int> rack_of_node_;
  std::vector<InfinibandLink> pair_links_;
  std::vector<int> pair_link_index_;  // num_nodes^2 or empty; -1 = infiniband_
  std::string name_;
  std::string spec_text_;
};

}  // namespace hetpipe::hw
