#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/gpu_spec.h"
#include "hw/link.h"

namespace hetpipe::hw {

// A physical GPU: identity plus its node placement.
struct Gpu {
  int id = -1;        // global id, unique within the cluster
  GpuType type = GpuType::kTitanV;
  int node = -1;      // node the GPU lives in
};

// A cluster of H nodes; each node holds a homogeneous set of GPUs, but nodes
// may differ from one another (Fig. 2 of the paper).
class Cluster {
 public:
  // Builds a cluster with one entry per node; entry i is the GPU type of node
  // i, replicated `gpus_per_node` times.
  Cluster(const std::vector<GpuType>& node_types, int gpus_per_node);

  // The paper's testbed: 4 nodes x 4 GPUs = V-node, R-node, G-node, Q-node,
  // PCIe 3.0 x16 inside a node, 56 Gbps Infiniband between nodes.
  static Cluster Paper();

  // A cluster restricted to the first `num_nodes` node types of the paper
  // testbed, used for the Table 4 scaling study (4[V], 8[VR], 12[VRQ], ...).
  static Cluster PaperSubset(const std::string& node_codes);

  int num_nodes() const { return num_nodes_; }
  int gpus_per_node() const { return gpus_per_node_; }
  int num_gpus() const { return static_cast<int>(gpus_.size()); }

  const Gpu& gpu(int id) const { return gpus_.at(static_cast<size_t>(id)); }
  const std::vector<Gpu>& gpus() const { return gpus_; }
  std::vector<int> GpusOnNode(int node) const;
  GpuType NodeType(int node) const { return node_types_.at(static_cast<size_t>(node)); }

  bool SameNode(int gpu_a, int gpu_b) const { return gpu(gpu_a).node == gpu(gpu_b).node; }

  // Link used between two GPUs: PCIe within a node, Infiniband across nodes.
  const LinkModel& LinkBetween(int gpu_a, int gpu_b) const;
  // Link between a GPU and a (parameter-server) process on node `node`.
  const LinkModel& LinkToNode(int gpu_id, int node) const;

  const PcieLink& pcie() const { return pcie_; }
  const InfinibandLink& infiniband() const { return infiniband_; }

  // Human-readable summary, e.g. "4 nodes x 4 GPUs [VVVV|RRRR|GGGG|QQQQ]".
  std::string ToString() const;

 private:
  std::vector<GpuType> node_types_;
  int num_nodes_ = 0;
  int gpus_per_node_ = 0;
  std::vector<Gpu> gpus_;
  PcieLink pcie_;
  InfinibandLink infiniband_;
};

}  // namespace hetpipe::hw
