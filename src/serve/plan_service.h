#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <string>

#include "runner/partition_cache.h"
#include "runner/result_sink.h"
#include "serve/protocol.h"
#include "util/mutex.h"

namespace hetpipe::runner {
class ThreadPool;
}  // namespace hetpipe::runner

namespace hetpipe::serve {

struct PlanServiceOptions {
  // Pool the partitioner's GPU-order search fans out on for cold solves;
  // null solves serially. The serve server passes its request executor —
  // ParallelFor from inside a pool worker runs inline, so a request being
  // handled on the pool degrades to a serial solve instead of deadlocking.
  runner::ThreadPool* pool = nullptr;
  // Bound on memoized (cluster, model, batch) contexts; the oldest is
  // dropped beyond it. Contexts hold a built cluster, a profiled model, and
  // a partitioner (tens of KiB each), so a service fed adversarially many
  // distinct specs stays bounded.
  int64_t max_contexts = 64;
};

// The request brain of hetpipe_serve, separated from the socket layer so
// tests (and future transports) can drive it directly: decodes a request,
// resolves (cluster, model, batch) to a memoized solving context, answers
// plan / max_nm / stats queries through the shared runner::PartitionCache,
// and renders the response as a runner::ResultRow (the wire JSON is
// runner::RowToJson of that row).
//
// Thread-safety: Handle/HandleJson are safe to call concurrently from any
// number of threads. The context memo is a shared_mutex map (readers
// concurrent, construction single-writer, built at most once per key), the
// partition cache does its own locking, and counters are atomics. Responses
// are value types; nothing returned aliases service state.
//
// Results are deterministic: the same request always produces the same
// partition (the cache returns bit-identical partitions hit or miss), so a
// serve deployment answers exactly what the batch benches compute.
class PlanService {
 public:
  // `cache` is the shared partition memo (caller-owned, must outlive the
  // service); it is what makes repeated plan queries cheap.
  PlanService(runner::PartitionCache* cache, PlanServiceOptions options = {});
  ~PlanService();

  PlanService(const PlanService&) = delete;
  PlanService& operator=(const PlanService&) = delete;

  // Handles one decoded request. Never throws: every failure becomes an
  // error response row (ok=false, error_code, error).
  runner::ResultRow Handle(const PlanRequest& request);

  // Decodes + handles one raw JSON payload. When `shutdown` is non-null it
  // is set to whether the request was a (successfully decoded) shutdown op —
  // the transport owns what shutdown means, the service only reports it.
  runner::ResultRow HandleJson(const std::string& payload, bool* shutdown = nullptr);

  // Lifetime request/error counts (errors are responses with ok=false).
  int64_t requests() const { return requests_.load(std::memory_order_relaxed); }
  int64_t errors() const { return errors_.load(std::memory_order_relaxed); }
  // Contexts currently memoized.
  int64_t contexts() const;

  runner::PartitionCache* cache() { return cache_; }

 private:
  struct Context;

  // Returns the memoized context for the request's (cluster, model, batch),
  // building it on first use. Null on failure, with `code`/`error` set.
  std::shared_ptr<const Context> GetContext(const PlanRequest& request, ErrorCode* code,
                                            std::string* error);

  runner::PartitionCache* cache_;
  PlanServiceOptions options_;

  mutable util::SharedMutex contexts_mu_;
  // Key -> context, with insertion order tracked for FIFO eviction (a plan
  // service's working set is a handful of clusters; LRU precision is not
  // worth per-read writes here).
  std::list<std::pair<std::string, std::shared_ptr<const Context>>> context_list_
      GUARDED_BY(contexts_mu_);

  std::atomic<int64_t> requests_{0};
  std::atomic<int64_t> errors_{0};
};

}  // namespace hetpipe::serve
