#pragma once

#include <atomic>
#include <cstdint>
#include <set>
#include <string>
#include <thread>

#include "runner/thread_pool.h"
#include "serve/plan_service.h"
#include "serve/protocol.h"
#include "util/mutex.h"

namespace hetpipe::serve {

struct PlanServerOptions {
  // Interface to bind. "0.0.0.0" listens on every interface; the default
  // stays loopback-only because a plan server has no authentication.
  std::string host = "127.0.0.1";
  // 0 asks the kernel for an ephemeral port; port() reports the bound one
  // (tests and the bench harness run on port 0 to avoid collisions).
  int port = 0;
  // Request-executor threads. Clamped to >= 2: a ThreadPool of k has k - 1
  // dedicated workers, and the accept loop must never execute a connection
  // inline (it has to get back to accept()). <= 0 selects the hardware
  // concurrency.
  int threads = 0;
  // Refused frame size, both directions (see protocol.h).
  uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
  // When nonempty, a background thread persists the partition cache here
  // every save_interval_s seconds (PartitionCache::Save is concurrent-safe
  // and atomic via temp-then-rename), and Join writes a final snapshot after
  // the drain — so a serve deployment's cache survives restarts.
  std::string cache_path;
  double save_interval_s = 30.0;
};

// The socket layer of hetpipe_serve: accepts TCP connections, reads
// length-prefixed JSON frames, and answers each through a PlanService. One
// accept thread hands every connection to the shared runner::ThreadPool via
// Submit; a connection is serviced serially (requests on one connection are
// answered in order), connections run concurrently.
//
// Shutdown is two-phase so it can be triggered from anywhere without
// deadlock:
//   RequestShutdown() — non-blocking: stops the accept loop and half-closes
//     (SHUT_RD) every open connection, so blocked readers see EOF while
//     responses still flow out. Safe to call from a connection handler (the
//     remote "shutdown" op does exactly that, after its response is written).
//   Join() — blocking: waits for in-flight connections to drain, stops the
//     saver thread, and writes the final cache snapshot. Call after
//     RequestShutdown; the destructor runs both.
// Frames that arrive after shutdown began are answered with error_code
// "shutting_down" rather than processed.
class PlanServer {
 public:
  // `cache` is the shared partition cache (caller-owned, must outlive the
  // server); it is also what the saver thread persists.
  PlanServer(runner::PartitionCache* cache, PlanServerOptions options = {});
  ~PlanServer();

  PlanServer(const PlanServer&) = delete;
  PlanServer& operator=(const PlanServer&) = delete;

  // Binds, listens, and starts the accept (and saver) threads. Returns false
  // with `error` filled on bind/listen failure; the server is then inert and
  // safe to destroy.
  bool Start(std::string* error);

  // The bound port (after a successful Start).
  int port() const { return port_; }

  void RequestShutdown();
  void Join();

  // True once shutdown began (locally or via the remote "shutdown" op); the
  // daemon's main loop polls this to know when to Join.
  bool shutdown_requested() const { return stop_.load(std::memory_order_acquire); }

  PlanService& service() { return service_; }

 private:
  void AcceptLoop();
  void HandleConnection(int fd);
  void SaverLoop();

  runner::PartitionCache* cache_;
  PlanServerOptions options_;
  runner::ThreadPool pool_;
  PlanService service_;

  // Atomic because the winning RequestShutdown caller (possibly a connection
  // handler acting on a remote "shutdown" op) reads it to half-close the
  // listener while Join — already past the accept-thread join on the main
  // thread — may be writing the -1 sentinel. The fd VALUE is what must not
  // tear; syscall ordering is safe because Join only closes after the accept
  // thread has exited, which requires the winner's ::shutdown to have landed.
  std::atomic<int> listen_fd_{-1};
  int port_ = 0;  // written by Start before any thread exists, then read-only
  std::atomic<bool> started_{false};
  std::atomic<bool> stop_{false};
  std::thread accept_thread_;
  std::thread saver_thread_;

  // Open connection fds (for SHUT_RD on shutdown) and the in-flight count
  // Join drains to zero.
  util::Mutex conn_mu_;
  util::CondVar drain_cv_;
  std::set<int> connections_ GUARDED_BY(conn_mu_);
  int active_ GUARDED_BY(conn_mu_) = 0;

  // saver_mu_ carries no data: it exists so SaverLoop's timed wait and
  // RequestShutdown's notify have a common mutex (stop_ itself is atomic).
  // RequestShutdown must notify with saver_mu_ held — see the comment there.
  util::Mutex saver_mu_;
  util::CondVar saver_cv_;
};

}  // namespace hetpipe::serve
