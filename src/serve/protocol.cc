#include "serve/protocol.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "partition/partitioner.h"
#include "runner/result_sink.h"

namespace hetpipe::serve {

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kNone:
      return "ok";
    case ErrorCode::kBadFrame:
      return "bad_frame";
    case ErrorCode::kBadJson:
      return "bad_json";
    case ErrorCode::kBadRequest:
      return "bad_request";
    case ErrorCode::kBadSpec:
      return "bad_spec";
    case ErrorCode::kBadModel:
      return "bad_model";
    case ErrorCode::kBadSelector:
      return "bad_selector";
    case ErrorCode::kShuttingDown:
      return "shutting_down";
    case ErrorCode::kInternal:
      return "internal";
  }
  return "internal";
}

namespace {

// Recursive-descent reader over the payload. Positions advance only on
// success; every failure records the byte offset so protocol errors point at
// the offending character, not just "bad JSON".
class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  bool Fail(const std::string& message) {
    if (error_.empty()) {
      error_ = message + " at byte " + std::to_string(pos_);
    }
    return false;
  }
  const std::string& error() const { return error_; }

  void SkipWs() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool AtEnd() {
    SkipWs();
    return pos_ >= text_.size();
  }

  bool Expect(char c) {
    SkipWs();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      return Fail(std::string("expected '") + c + "'");
    }
    ++pos_;
    return true;
  }

  bool Peek(char c) {
    SkipWs();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  bool ParseString(std::string* out) {
    if (!Expect('"')) {
      return false;
    }
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("raw control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Fail("truncated \\u escape");
          }
          unsigned value = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            value <<= 4;
            if (h >= '0' && h <= '9') {
              value |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              value |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              value |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail("bad \\u escape digit");
            }
          }
          // The writer side only emits \u00XX (control characters); decode
          // the BMP as UTF-8 so any well-formed producer round-trips.
          if (value < 0x80) {
            out->push_back(static_cast<char>(value));
          } else if (value < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (value >> 6)));
            out->push_back(static_cast<char>(0x80 | (value & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (value >> 12)));
            out->push_back(static_cast<char>(0x80 | ((value >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (value & 0x3F)));
          }
          break;
        }
        default:
          return Fail("unknown escape");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(JsonValue* out) {
    SkipWs();
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Fail("expected a number");
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    errno = 0;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || errno == ERANGE || !std::isfinite(value)) {
      return Fail("malformed number \"" + token + "\"");
    }
    out->type = JsonValue::Type::kNumber;
    out->num = value;
    return true;
  }

  // Syntax-checks a nested object/array and captures its raw text: protocol
  // messages are flat, so nothing downstream decodes these further.
  bool SkipNested(JsonValue* out) {
    SkipWs();
    const size_t start = pos_;
    const char open = text_[pos_];
    const char close = open == '{' ? '}' : ']';
    int depth = 0;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        std::string ignored;
        if (!ParseString(&ignored)) {
          return false;
        }
        continue;
      }
      ++pos_;
      if (c == open || c == '{' || c == '[') {
        ++depth;
      } else if (c == close || c == '}' || c == ']') {
        --depth;
        if (depth == 0) {
          out->type = JsonValue::Type::kRaw;
          out->str = text_.substr(start, pos_ - start);
          return true;
        }
        if (depth < 0) {
          return Fail("mismatched bracket");
        }
      }
    }
    return Fail("unterminated nested value");
  }

  bool ParseValue(JsonValue* out) {
    SkipWs();
    if (pos_ >= text_.size()) {
      return Fail("expected a value");
    }
    const char c = text_[pos_];
    if (c == '"') {
      out->type = JsonValue::Type::kString;
      return ParseString(&out->str);
    }
    if (c == '{' || c == '[') {
      return SkipNested(out);
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      out->type = JsonValue::Type::kBool;
      out->boolean = true;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      out->type = JsonValue::Type::kBool;
      out->boolean = false;
      return true;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      out->type = JsonValue::Type::kNull;
      return true;
    }
    return ParseNumber(out);
  }

 private:
  const std::string& text_;
  size_t pos_ = 0;
  std::string error_;
};

void SetError(std::string* error, const std::string& message) {
  if (error != nullptr) {
    *error = message;
  }
}

// Reads exactly `size` bytes, looping over short reads and EINTR. Returns
// bytes read before EOF (== size on success), or -1 on error.
ssize_t ReadFully(int fd, char* data, size_t size) {
  size_t got = 0;
  while (got < size) {
    const ssize_t n = ::read(fd, data + got, size - got);
    if (n == 0) {
      break;
    }
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return -1;
    }
    got += static_cast<size_t>(n);
  }
  return static_cast<ssize_t>(got);
}

}  // namespace

bool ParseJsonObject(const std::string& text, std::map<std::string, JsonValue>* out,
                     std::string* error) {
  out->clear();
  JsonReader reader(text);
  if (!reader.Expect('{')) {
    SetError(error, reader.error());
    return false;
  }
  if (!reader.Peek('}')) {
    for (;;) {
      std::string key;
      JsonValue value;
      if (!reader.ParseString(&key) || !reader.Expect(':') || !reader.ParseValue(&value)) {
        SetError(error, reader.error());
        return false;
      }
      (*out)[key] = std::move(value);
      if (reader.Peek(',')) {
        reader.Expect(',');
        continue;
      }
      break;
    }
  }
  if (!reader.Expect('}')) {
    SetError(error, reader.error());
    return false;
  }
  if (!reader.AtEnd()) {
    SetError(error, "trailing bytes after the object");
    return false;
  }
  return true;
}

namespace {

// strerror_r has two incompatible signatures (XSI returns int and fills the
// buffer; GNU returns a char* that may ignore the buffer). Overloading on the
// return type picks the right interpretation without feature-test-macro
// guessing, which tends to rot across libc versions.
[[maybe_unused]] const char* StrerrorResult(int rc, const char* buf) {
  return rc == 0 ? buf : "unknown error";
}
[[maybe_unused]] const char* StrerrorResult(const char* s, const char* /*buf*/) { return s; }

}  // namespace

std::string ErrnoString(int errno_value) {
  char buf[128] = "unknown error";
  return StrerrorResult(::strerror_r(errno_value, buf, sizeof(buf)), buf);
}

bool WriteFrame(int fd, const std::string& payload, uint32_t max_frame_bytes,
                std::string* error) {
  if (payload.size() > max_frame_bytes) {
    SetError(error, "frame of " + std::to_string(payload.size()) + " bytes exceeds the " +
                        std::to_string(max_frame_bytes) + "-byte bound");
    return false;
  }
  const uint32_t size = static_cast<uint32_t>(payload.size());
  std::string frame(reinterpret_cast<const char*>(&size), sizeof(size));
  frame += payload;
  size_t sent = 0;
  while (sent < frame.size()) {
    // MSG_NOSIGNAL: a peer that vanished mid-response must surface as EPIPE,
    // not kill the daemon with SIGPIPE.
    const ssize_t n = ::send(fd, frame.data() + sent, frame.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      SetError(error, "send: " + ErrnoString(errno));
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

FrameResult ReadFrame(int fd, uint32_t max_frame_bytes, std::string* payload,
                      std::string* error) {
  uint32_t size = 0;
  const ssize_t header = ReadFully(fd, reinterpret_cast<char*>(&size), sizeof(size));
  if (header == 0) {
    return FrameResult::kEof;  // clean close between frames
  }
  if (header < 0 || header != static_cast<ssize_t>(sizeof(size))) {
    SetError(error, header < 0 ? "read: " + ErrnoString(errno)
                               : std::string("stream ended inside a length prefix"));
    return FrameResult::kError;
  }
  if (size > max_frame_bytes) {
    SetError(error, "length prefix of " + std::to_string(size) + " bytes exceeds the " +
                        std::to_string(max_frame_bytes) + "-byte bound");
    return FrameResult::kError;
  }
  payload->resize(size);
  const ssize_t body = size == 0 ? 0 : ReadFully(fd, payload->data(), size);
  if (body != static_cast<ssize_t>(size)) {
    SetError(error, body < 0 ? "read: " + ErrnoString(errno)
                             : std::string("stream ended inside a frame payload"));
    return FrameResult::kError;
  }
  return FrameResult::kFrame;
}

std::string PlanRequest::ToJson() const {
  runner::ResultRow row;
  row.Set("v", kProtocolVersion);
  row.Set("op", op);
  if (!id.empty()) {
    row.Set("id", id);
  }
  if (!cluster_spec.empty()) {
    row.Set("cluster_spec", cluster_spec);
  } else {
    row.Set("cluster_nodes", cluster_nodes);
  }
  row.Set("model", model);
  if (!selector.empty()) {
    row.Set("selector", selector);
  }
  row.Set("nm", nm);
  row.Set("nm_cap", nm_cap);
  row.Set("batch_size", batch_size);
  row.Set("search_orders", search_orders);
  // Search-tier knobs are optional-on-the-wire: emitted only when they
  // deviate from the defaults, so pre-knob consumers see unchanged requests.
  if (strategy != "auto") {
    row.Set("strategy", strategy);
  }
  if (beam_width != 8) {
    row.Set("beam_width", beam_width);
  }
  if (rack_order_limit != 720) {
    row.Set("rack_order_limit", rack_order_limit);
  }
  return runner::RowToJson(row);
}

namespace {

// Field decoding helpers shared by ParsePlanRequest: every type mismatch is
// a kBadRequest naming the field, never a silent default.
bool TakeString(const std::map<std::string, JsonValue>& fields, const std::string& key,
                std::string* out, std::string* error) {
  auto it = fields.find(key);
  if (it == fields.end()) {
    return true;
  }
  if (it->second.type != JsonValue::Type::kString) {
    *error = "field \"" + key + "\" must be a string";
    return false;
  }
  *out = it->second.str;
  return true;
}

bool TakeInt(const std::map<std::string, JsonValue>& fields, const std::string& key, int min,
             int max, int* out, std::string* error) {
  auto it = fields.find(key);
  if (it == fields.end()) {
    return true;
  }
  const JsonValue& v = it->second;
  if (v.type != JsonValue::Type::kNumber || v.num != std::floor(v.num)) {
    *error = "field \"" + key + "\" must be an integer";
    return false;
  }
  if (v.num < min || v.num > max) {
    *error = "field \"" + key + "\" must be in [" + std::to_string(min) + ", " +
             std::to_string(max) + "]";
    return false;
  }
  *out = static_cast<int>(v.num);
  return true;
}

bool TakeBool(const std::map<std::string, JsonValue>& fields, const std::string& key, bool* out,
              std::string* error) {
  auto it = fields.find(key);
  if (it == fields.end()) {
    return true;
  }
  if (it->second.type != JsonValue::Type::kBool) {
    *error = "field \"" + key + "\" must be a boolean";
    return false;
  }
  *out = it->second.boolean;
  return true;
}

}  // namespace

bool ParsePlanRequest(const std::string& payload, PlanRequest* out, ErrorCode* code,
                      std::string* error) {
  *out = PlanRequest();
  std::map<std::string, JsonValue> fields;
  std::string parse_error;
  if (!ParseJsonObject(payload, &fields, &parse_error)) {
    *code = ErrorCode::kBadJson;
    *error = parse_error;
    return false;
  }

  int version = kProtocolVersion;
  if (!TakeInt(fields, "v", 0, std::numeric_limits<int>::max(), &version, error) ||
      !TakeString(fields, "op", &out->op, error) || !TakeString(fields, "id", &out->id, error) ||
      !TakeString(fields, "cluster_spec", &out->cluster_spec, error) ||
      !TakeString(fields, "cluster_nodes", &out->cluster_nodes, error) ||
      !TakeString(fields, "model", &out->model, error) ||
      !TakeString(fields, "selector", &out->selector, error) ||
      !TakeInt(fields, "nm", 1, 1024, &out->nm, error) ||
      !TakeInt(fields, "nm_cap", 1, 1024, &out->nm_cap, error) ||
      !TakeInt(fields, "batch_size", 1, 65536, &out->batch_size, error) ||
      !TakeBool(fields, "search_orders", &out->search_orders, error) ||
      !TakeString(fields, "strategy", &out->strategy, error) ||
      !TakeInt(fields, "beam_width", 1, 4096, &out->beam_width, error) ||
      !TakeInt(fields, "rack_order_limit", 1, 1000000, &out->rack_order_limit, error)) {
    *code = ErrorCode::kBadRequest;
    return false;
  }
  {
    partition::SearchStrategy parsed_strategy;
    if (!partition::ParseSearchStrategy(out->strategy, &parsed_strategy)) {
      *code = ErrorCode::kBadRequest;
      *error = "field \"strategy\" must be one of auto, exact, beam, hierarchical (got \"" +
               out->strategy + "\")";
      return false;
    }
  }
  if (version != kProtocolVersion) {
    *code = ErrorCode::kBadRequest;
    *error = "protocol version " + std::to_string(version) + " is not supported (this server: " +
             std::to_string(kProtocolVersion) + ")";
    return false;
  }
  if (out->op != "plan" && out->op != "max_nm" && out->op != "stats" && out->op != "shutdown") {
    *code = ErrorCode::kBadRequest;
    *error = "unknown op \"" + out->op + "\"";
    return false;
  }
  if ((out->op == "plan" || out->op == "max_nm") && out->selector.empty()) {
    *code = ErrorCode::kBadRequest;
    *error = "op \"" + out->op + "\" needs a \"selector\"";
    return false;
  }
  *code = ErrorCode::kNone;
  return true;
}

}  // namespace hetpipe::serve
