#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <utility>

#include "runner/result_sink.h"

namespace hetpipe::serve {
namespace {

PlanServiceOptions ServiceOptions(runner::ThreadPool* pool) {
  PlanServiceOptions options;
  options.pool = pool;
  return options;
}

}  // namespace

PlanServer::PlanServer(runner::PartitionCache* cache, PlanServerOptions options)
    : cache_(cache),
      options_(std::move(options)),
      // k pool threads = k - 1 dedicated workers; at least one worker must
      // exist or Submit would run connections inline on the accept loop.
      pool_(options_.threads <= 0 ? 0 : (options_.threads < 2 ? 2 : options_.threads)),
      service_(cache, ServiceOptions(&pool_)) {}

PlanServer::~PlanServer() {
  RequestShutdown();
  Join();
}

bool PlanServer::Start(std::string* error) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    if (error) *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (options_.host.empty() || options_.host == "0.0.0.0") {
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
  } else if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    if (error) *error = "bad host \"" + options_.host + "\" (want an IPv4 address)";
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (error) *error = std::string("bind: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::listen(listen_fd_, 64) != 0) {
    if (error) *error = std::string("listen: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }

  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  } else {
    port_ = options_.port;
  }

  started_.store(true);
  accept_thread_ = std::thread(&PlanServer::AcceptLoop, this);
  if (!options_.cache_path.empty() && options_.save_interval_s > 0) {
    saver_thread_ = std::thread(&PlanServer::SaverLoop, this);
  }
  return true;
}

void PlanServer::AcceptLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // EBADF/EINVAL after RequestShutdown closed the listener; anything
      // else (e.g. EMFILE) also ends the loop rather than spinning.
      break;
    }
    if (stop_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      connections_.insert(fd);
      ++active_;
    }
    // If RequestShutdown ran between the stop check above and the insert, its
    // half-close sweep missed this fd — it would stay readable and stall the
    // drain. stop_ is set before the sweep, so seeing it here covers the gap.
    if (stop_.load(std::memory_order_acquire)) ::shutdown(fd, SHUT_RD);
    pool_.Submit([this, fd] { HandleConnection(fd); });
  }
}

void PlanServer::HandleConnection(int fd) {
  std::string payload;
  std::string error;
  while (true) {
    FrameResult result = ReadFrame(fd, options_.max_frame_bytes, &payload, &error);
    if (result != FrameResult::kFrame) break;

    runner::ResultRow row;
    bool want_shutdown = false;
    if (stop_.load(std::memory_order_acquire)) {
      // The connection was half-closed but this frame was already in the
      // kernel buffer; tell the client to go elsewhere instead of answering
      // after "shutdown drained".
      row.Set("v", kProtocolVersion);
      row.Set("ok", false);
      row.Set("error_code", ErrorCodeName(ErrorCode::kShuttingDown));
      row.Set("error", "server is shutting down");
    } else {
      row = service_.HandleJson(payload, &want_shutdown);
    }
    if (!WriteFrame(fd, runner::RowToJson(row), options_.max_frame_bytes, &error)) break;
    if (want_shutdown) RequestShutdown();
  }

  ::close(fd);
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    connections_.erase(fd);
    --active_;
  }
  drain_cv_.notify_all();
}

void PlanServer::SaverLoop() {
  const auto interval = std::chrono::duration<double>(options_.save_interval_s);
  std::unique_lock<std::mutex> lock(saver_mu_);
  while (!stop_.load(std::memory_order_acquire)) {
    saver_cv_.wait_for(lock, interval, [&] { return stop_.load(std::memory_order_acquire); });
    if (stop_.load(std::memory_order_acquire)) break;
    lock.unlock();
    std::string error;
    if (!cache_->Save(options_.cache_path, &error)) {
      std::fprintf(stderr, "hetpipe_serve: periodic cache save failed: %s\n", error.c_str());
    }
    lock.lock();
  }
}

void PlanServer::RequestShutdown() {
  bool expected = false;
  if (!stop_.compare_exchange_strong(expected, true)) return;
  if (!started_.load()) return;

  // Unblock accept(); the fd itself is closed in Join after the accept
  // thread has certainly stopped using it.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);

  // Half-close open connections: readers blocked in ReadFrame see EOF, but
  // responses in flight still write. HandleConnection owns the full close.
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (int fd : connections_) ::shutdown(fd, SHUT_RD);
  }
  saver_cv_.notify_all();
}

void PlanServer::Join() {
  if (!started_.load()) return;
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  {
    std::unique_lock<std::mutex> lock(conn_mu_);
    drain_cv_.wait(lock, [&] { return active_ == 0; });
  }
  if (saver_thread_.joinable()) saver_thread_.join();
  if (!options_.cache_path.empty()) {
    std::string error;
    if (!cache_->Save(options_.cache_path, &error)) {
      std::fprintf(stderr, "hetpipe_serve: final cache save failed: %s\n", error.c_str());
    }
  }
}

}  // namespace hetpipe::serve
