#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <utility>

#include "runner/result_sink.h"

namespace hetpipe::serve {
namespace {

PlanServiceOptions ServiceOptions(runner::ThreadPool* pool) {
  PlanServiceOptions options;
  options.pool = pool;
  return options;
}

}  // namespace

PlanServer::PlanServer(runner::PartitionCache* cache, PlanServerOptions options)
    : cache_(cache),
      options_(std::move(options)),
      // k pool threads = k - 1 dedicated workers; at least one worker must
      // exist or Submit would run connections inline on the accept loop.
      pool_(options_.threads <= 0 ? 0 : (options_.threads < 2 ? 2 : options_.threads)),
      service_(cache, ServiceOptions(&pool_)) {}

PlanServer::~PlanServer() {
  RequestShutdown();
  Join();
}

bool PlanServer::Start(std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error) *error = "socket: " + ErrnoString(errno);
    return false;
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (options_.host.empty() || options_.host == "0.0.0.0") {
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
  } else if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    if (error) *error = "bad host \"" + options_.host + "\" (want an IPv4 address)";
    ::close(fd);
    return false;
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (error) *error = "bind: " + ErrnoString(errno);
    ::close(fd);
    return false;
  }
  if (::listen(fd, 64) != 0) {
    if (error) *error = "listen: " + ErrnoString(errno);
    ::close(fd);
    return false;
  }

  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  } else {
    port_ = options_.port;
  }

  // Publish the listener fd before any thread that uses it exists.
  listen_fd_.store(fd, std::memory_order_release);
  started_.store(true);
  accept_thread_ = std::thread(&PlanServer::AcceptLoop, this);
  if (!options_.cache_path.empty() && options_.save_interval_s > 0) {
    saver_thread_ = std::thread(&PlanServer::SaverLoop, this);
  }
  return true;
}

void PlanServer::AcceptLoop() {
  const int listen_fd = listen_fd_.load(std::memory_order_acquire);
  while (!stop_.load(std::memory_order_acquire)) {
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // EBADF/EINVAL after RequestShutdown closed the listener; anything
      // else (e.g. EMFILE) also ends the loop rather than spinning.
      break;
    }
    if (stop_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    {
      util::MutexLock lock(conn_mu_);
      connections_.insert(fd);
      ++active_;
    }
    // If RequestShutdown ran between the stop check above and the insert, its
    // half-close sweep missed this fd — it would stay readable and stall the
    // drain. stop_ is set before the sweep, so seeing it here covers the gap.
    if (stop_.load(std::memory_order_acquire)) ::shutdown(fd, SHUT_RD);
    pool_.Submit([this, fd] { HandleConnection(fd); });
  }
}

void PlanServer::HandleConnection(int fd) {
  std::string payload;
  std::string error;
  while (true) {
    FrameResult result = ReadFrame(fd, options_.max_frame_bytes, &payload, &error);
    if (result != FrameResult::kFrame) break;

    runner::ResultRow row;
    bool want_shutdown = false;
    if (stop_.load(std::memory_order_acquire)) {
      // The connection was half-closed but this frame was already in the
      // kernel buffer; tell the client to go elsewhere instead of answering
      // after "shutdown drained".
      row.Set("v", kProtocolVersion);
      row.Set("ok", false);
      row.Set("error_code", ErrorCodeName(ErrorCode::kShuttingDown));
      row.Set("error", "server is shutting down");
    } else {
      row = service_.HandleJson(payload, &want_shutdown);
    }
    if (!WriteFrame(fd, runner::RowToJson(row), options_.max_frame_bytes, &error)) break;
    if (want_shutdown) RequestShutdown();
  }

  // Unregister BEFORE closing: once close() returns, the kernel may hand the
  // same fd number to a concurrent accept(), and a RequestShutdown sweep that
  // still saw the stale entry would half-close the wrong (new) connection.
  // With the erase first, the sweep either sees this fd while it is still
  // open (harmless — we are past reading from it) or not at all.
  {
    util::MutexLock lock(conn_mu_);
    connections_.erase(fd);
    --active_;
    // Notify INSIDE the critical section: a Join waiter cannot observe
    // active_ == 0 (and let ~PlanServer destroy drain_cv_) until this lock
    // is released, so the notify provably finishes while the condvar is
    // still alive. Notifying after the unlock races destruction — TSan
    // caught exactly that (pthread_cond_broadcast vs pthread_cond_destroy).
    drain_cv_.NotifyAll();
  }
  ::close(fd);
}

void PlanServer::SaverLoop() {
  const auto interval = std::chrono::duration<double>(options_.save_interval_s);
  for (;;) {
    {
      util::MutexLock lock(saver_mu_);
      // stop_ is re-checked under saver_mu_: RequestShutdown sets it before
      // notifying under the same mutex, so the wakeup can never fall into
      // the gap between this check and the block. A spurious wakeup merely
      // saves early, which is harmless.
      if (!stop_.load(std::memory_order_acquire)) {
        saver_cv_.WaitFor(lock, interval);
      }
    }
    if (stop_.load(std::memory_order_acquire)) return;
    std::string error;
    if (!cache_->Save(options_.cache_path, &error)) {
      std::fprintf(stderr, "hetpipe_serve: periodic cache save failed: %s\n", error.c_str());
    }
  }
}

void PlanServer::RequestShutdown() {
  bool expected = false;
  if (!stop_.compare_exchange_strong(expected, true)) return;
  if (!started_.load()) return;

  // Unblock accept(); the fd itself is closed in Join after the accept
  // thread has certainly stopped using it.
  const int listen_fd = listen_fd_.load(std::memory_order_acquire);
  if (listen_fd >= 0) ::shutdown(listen_fd, SHUT_RDWR);

  // Half-close open connections: readers blocked in ReadFrame see EOF, but
  // responses in flight still write. HandleConnection owns the full close.
  {
    util::MutexLock lock(conn_mu_);
    for (int fd : connections_) ::shutdown(fd, SHUT_RD);
  }
  // The saver checks stop_ under saver_mu_ before blocking, so passing
  // through the mutex here orders this notify after that check: it either
  // sees stop_ already set, or it is blocked where NotifyAll reaches it.
  // Notifying without the mutex could fire in the unlocked gap between the
  // saver's check and its block and be lost, stalling shutdown by up to one
  // save interval.
  {
    util::MutexLock lock(saver_mu_);
    saver_cv_.NotifyAll();
  }
}

void PlanServer::Join() {
  if (!started_.load()) return;
  if (accept_thread_.joinable()) accept_thread_.join();
  const int listen_fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (listen_fd >= 0) {
    ::close(listen_fd);
  }
  {
    util::MutexLock lock(conn_mu_);
    while (active_ != 0) {
      drain_cv_.Wait(lock);
    }
  }
  if (saver_thread_.joinable()) saver_thread_.join();
  if (!options_.cache_path.empty()) {
    std::string error;
    if (!cache_->Save(options_.cache_path, &error)) {
      std::fprintf(stderr, "hetpipe_serve: final cache save failed: %s\n", error.c_str());
    }
  }
}

}  // namespace hetpipe::serve
