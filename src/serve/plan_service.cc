#include "serve/plan_service.h"

#include <chrono>
#include <exception>
#include <stdexcept>
#include <utility>

#include "core/experiment.h"
#include "hw/cluster.h"
#include "hw/cluster_spec.h"
#include "hw/gpu_spec.h"
#include "model/model_graph.h"
#include "model/profiler.h"
#include "partition/partitioner.h"
#include "runner/thread_pool.h"

namespace hetpipe::serve {
namespace {

// Renders a solved partition into the response's stage list: one
// "first-last:gpu<id>:node<node>:<class>" term per stage, joined by "|".
// Kept as a single string field so responses stay flat (the protocol's JSON
// reader only decodes flat objects) and diff cleanly in JSONL logs.
std::string StagesToString(const partition::Partition& partition) {
  std::string out;
  for (const partition::StageAssignment& stage : partition.stages) {
    if (!out.empty()) out += "|";
    out += std::to_string(stage.first_layer);
    out += "-";
    out += std::to_string(stage.last_layer);
    out += ":gpu";
    out += std::to_string(stage.gpu_id);
    out += ":node";
    out += std::to_string(stage.node);
    out += ":";
    out += hw::SpecOf(stage.gpu_type).name;
  }
  return out;
}

void FillPartition(const partition::Partition& partition, runner::ResultRow* row) {
  row->Set("feasible", partition.feasible);
  row->Set("num_stages", partition.num_stages());
  row->Set("bottleneck_time_s", partition.bottleneck_time);
  row->Set("sum_time_s", partition.sum_time);
  row->Set("stages", StagesToString(partition));
}

}  // namespace

// Everything a plan query needs that depends only on (cluster, model,
// batch_size): the built cluster, the model graph, its profile on that batch
// size, and a partitioner over both. Members reference each other by pointer
// (profile -> graph, partitioner -> profile + cluster), so a Context is
// constructed in place, held by shared_ptr, and never copied or moved.
// Immutable after construction, hence safe to share across request threads.
struct PlanService::Context {
  hw::Cluster cluster;
  model::ModelGraph graph;
  model::ModelProfile profile;
  partition::Partitioner partitioner;

  Context(hw::Cluster built_cluster, model::ModelGraph built_graph, int batch_size)
      : cluster(std::move(built_cluster)),
        graph(std::move(built_graph)),
        profile(graph, batch_size),
        partitioner(profile, cluster) {}
};

PlanService::PlanService(runner::PartitionCache* cache, PlanServiceOptions options)
    : cache_(cache), options_(options) {}

PlanService::~PlanService() = default;

int64_t PlanService::contexts() const {
  util::ReaderMutexLock lock(contexts_mu_);
  return static_cast<int64_t>(context_list_.size());
}

std::shared_ptr<const PlanService::Context> PlanService::GetContext(const PlanRequest& request,
                                                                    ErrorCode* code,
                                                                    std::string* error) {
  const std::string key = (request.cluster_spec.empty() ? "nodes:" + request.cluster_nodes
                                                        : "spec:" + request.cluster_spec) +
                          "\n" + request.model + "\n" + std::to_string(request.batch_size);
  {
    util::ReaderMutexLock lock(contexts_mu_);
    for (const auto& [context_key, context] : context_list_) {
      if (context_key == key) return context;
    }
  }

  // Miss: build outside the lock (construction parses a spec and profiles a
  // model — milliseconds). Two threads racing on one key both build; the
  // first insert wins and the loser's copy is dropped, which is cheaper than
  // holding the exclusive lock across a build.
  core::ModelKind kind;
  if (request.model == core::ModelName(core::ModelKind::kResNet152)) {
    kind = core::ModelKind::kResNet152;
  } else if (request.model == core::ModelName(core::ModelKind::kVgg19)) {
    kind = core::ModelKind::kVgg19;
  } else {
    *code = ErrorCode::kBadModel;
    *error = "unknown model \"" + request.model + "\" (expected resnet152 or vgg19)";
    return nullptr;
  }

  std::shared_ptr<const Context> built;
  try {
    hw::Cluster cluster = request.cluster_spec.empty()
                              ? hw::Cluster::PaperSubset(request.cluster_nodes)
                              : hw::ClusterSpec::Parse(request.cluster_spec).Build();
    built = std::make_shared<const Context>(std::move(cluster), core::BuildModel(kind),
                                            request.batch_size);
  } catch (const std::exception& e) {
    *code = ErrorCode::kBadSpec;
    *error = e.what();
    return nullptr;
  }

  util::WriterMutexLock lock(contexts_mu_);
  for (const auto& [context_key, context] : context_list_) {
    if (context_key == key) return context;
  }
  context_list_.emplace_back(key, built);
  while (options_.max_contexts > 0 &&
         static_cast<int64_t>(context_list_.size()) > options_.max_contexts) {
    context_list_.pop_front();
  }
  return built;
}

runner::ResultRow PlanService::Handle(const PlanRequest& request) {
  const auto start = std::chrono::steady_clock::now();
  requests_.fetch_add(1, std::memory_order_relaxed);

  runner::ResultRow row;
  row.Set("v", kProtocolVersion);
  if (!request.id.empty()) row.Set("id", request.id);
  row.Set("op", request.op);

  auto fail = [&](ErrorCode code, const std::string& message) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    row.Set("ok", false);
    row.Set("error_code", ErrorCodeName(code));
    row.Set("error", message);
    return row;
  };
  auto finish = [&]() {
    const auto elapsed = std::chrono::steady_clock::now() - start;
    row.Set("latency_us",
            std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count());
    return row;
  };

  if (request.op == "shutdown") {
    row.Set("ok", true);
    return finish();
  }
  if (request.op == "stats") {
    row.Set("ok", true);
    row.Set("requests", requests());
    row.Set("errors", errors());
    row.Set("contexts", contexts());
    row.Set("cache_size", cache_->size());
    row.Set("cache_capacity", cache_->capacity());
    row.Set("cache_hits", cache_->hits());
    row.Set("cache_misses", cache_->misses());
    row.Set("cache_evictions", cache_->evictions());
    return finish();
  }

  // plan / max_nm (the only ops ParsePlanRequest lets through).
  ErrorCode code = ErrorCode::kNone;
  std::string error;
  std::shared_ptr<const Context> context = GetContext(request, &code, &error);
  if (!context) {
    fail(code, error);
    return finish();
  }

  std::vector<int> gpu_ids;
  try {
    gpu_ids = core::PickGpus(context->cluster, request.selector);
  } catch (const std::exception& e) {
    fail(ErrorCode::kBadSelector, e.what());
    return finish();
  }

  partition::PartitionOptions options;
  options.nm = request.nm;
  options.search_gpu_orders = request.search_orders;
  options.pool = options_.pool;
  // Already validated by ParsePlanRequest; re-parse into the enum here so a
  // Handle() caller that bypassed parsing still gets a defined strategy.
  if (!partition::ParseSearchStrategy(request.strategy, &options.strategy)) {
    fail(ErrorCode::kBadRequest, "unknown strategy \"" + request.strategy + "\"");
    return finish();
  }
  options.beam_width = request.beam_width;
  options.rack_order_limit = request.rack_order_limit;

  // Echo the RESOLVED strategy (never "auto"), plus the knobs that shaped the
  // search — mirroring what the partition-cache key records, so a client can
  // tell which tier actually answered. Resolution ignores nm and the pool, so
  // one resolution covers every max_nm probe too.
  const partition::SearchStrategy resolved =
      partition::ResolveSearchStrategy(context->cluster, gpu_ids, options);
  row.Set("strategy", partition::SearchStrategyName(resolved));
  if (resolved != partition::SearchStrategy::kExact) {
    row.Set("beam_width", options.beam_width);
    if (resolved == partition::SearchStrategy::kHierarchical) {
      row.Set("rack_order_limit", options.rack_order_limit);
    }
  }

  try {
    if (request.op == "plan") {
      bool was_hit = false;
      partition::Partition partition =
          cache_->Solve(context->partitioner, gpu_ids, options, &was_hit);
      row.Set("ok", true);
      row.Set("nm", request.nm);
      FillPartition(partition, &row);
      row.Set("cache_hit", was_hit);
    } else {  // max_nm
      // Every probe of the binary search goes through the shared cache;
      // cache_hit means the whole query — every probe — was served from it.
      bool all_hits = true;
      auto solve = [&](const partition::PartitionOptions& probe_options) {
        bool was_hit = false;
        partition::Partition probe =
            cache_->Solve(context->partitioner, gpu_ids, probe_options, &was_hit);
        all_hits = all_hits && was_hit;
        return probe;
      };
      const int max_nm = partition::FindMaxNmWith(solve, request.nm_cap, options);
      row.Set("ok", true);
      row.Set("max_nm", max_nm);
      row.Set("nm_cap", request.nm_cap);
      if (max_nm > 0) {
        // The search probed max_nm last, so this re-solve is a cache hit and
        // just fetches the winning partition for the response.
        options.nm = max_nm;
        FillPartition(cache_->Solve(context->partitioner, gpu_ids, options), &row);
      } else {
        row.Set("feasible", false);
      }
      row.Set("cache_hit", all_hits);
    }
  } catch (const std::exception& e) {
    fail(ErrorCode::kInternal, e.what());
  }
  return finish();
}

runner::ResultRow PlanService::HandleJson(const std::string& payload, bool* shutdown) {
  if (shutdown) *shutdown = false;
  PlanRequest request;
  ErrorCode code = ErrorCode::kNone;
  std::string error;
  if (!ParsePlanRequest(payload, &request, &code, &error)) {
    requests_.fetch_add(1, std::memory_order_relaxed);
    errors_.fetch_add(1, std::memory_order_relaxed);
    runner::ResultRow row;
    row.Set("v", kProtocolVersion);
    if (!request.id.empty()) row.Set("id", request.id);
    row.Set("ok", false);
    row.Set("error_code", ErrorCodeName(code));
    row.Set("error", error);
    return row;
  }
  if (shutdown && request.op == "shutdown") *shutdown = true;
  return Handle(request);
}

}  // namespace hetpipe::serve
