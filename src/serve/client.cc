#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace hetpipe::serve {

PlanClient::~PlanClient() { Close(); }

void PlanClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool PlanClient::Connect(const std::string& host, int port, std::string* error) {
  Close();
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error) *error = "socket: " + ErrnoString(errno);
    return false;
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  const std::string& target = host.empty() ? std::string("127.0.0.1") : host;
  if (::inet_pton(AF_INET, target.c_str(), &addr.sin_addr) != 1) {
    if (error) *error = "bad host \"" + target + "\" (want an IPv4 address)";
    ::close(fd);
    return false;
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    if (error) *error = "connect: " + ErrnoString(errno);
    ::close(fd);
    return false;
  }
  fd_ = fd;
  return true;
}

bool PlanClient::CallRaw(const std::string& request_json, std::string* response_json,
                         std::string* error) {
  if (fd_ < 0) {
    if (error) *error = "not connected";
    return false;
  }
  if (!WriteFrame(fd_, request_json, max_frame_bytes, error)) {
    Close();
    return false;
  }
  FrameResult result = ReadFrame(fd_, max_frame_bytes, response_json, error);
  if (result == FrameResult::kFrame) return true;
  if (result == FrameResult::kEof && error) *error = "server closed the connection";
  Close();
  return false;
}

bool PlanClient::Call(const PlanRequest& request, std::map<std::string, JsonValue>* response,
                      std::string* error) {
  std::string payload;
  if (!CallRaw(request.ToJson(), &payload, error)) return false;
  if (!ParseJsonObject(payload, response, error)) {
    // A malformed response means the stream is unusable, same as a framing
    // failure.
    Close();
    return false;
  }
  return true;
}

}  // namespace hetpipe::serve
