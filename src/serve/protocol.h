#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace hetpipe::serve {

// ---- Wire format ----
//
// hetpipe_serve speaks length-prefixed JSON over a stream socket: each
// message is a 4-byte little-endian unsigned payload length followed by that
// many bytes of UTF-8 JSON (one object per message, no trailing newline).
// Requests and responses use the same framing; a connection carries any
// number of request/response pairs in order. Responses are produced by the
// same runner::RowToJson encoder the JSONL sinks use, so escaping rules are
// identical to every other JSON this repo emits. docs/serve-protocol.md is
// the field-level reference.
//
// Versioning: every request and response carries "v". A server answers
// requests whose "v" equals kProtocolVersion and rejects others with
// error_code "bad_request" — new optional fields may be added within a
// version, field renames/removals or semantic changes bump it.
constexpr int kProtocolVersion = 1;

// Frames larger than this are refused (read or written): a length prefix of
// gigabytes is a corrupt stream or an attack, not a plan query. The server
// makes its bound configurable; this is the default on both sides.
constexpr uint32_t kDefaultMaxFrameBytes = 1u << 20;

// Machine-readable error identities, sent as "error_code" strings (the
// numeric values never travel). Stable: new codes may be appended, existing
// names never change meaning.
enum class ErrorCode {
  kNone = 0,
  kBadFrame,      // oversized or malformed frame
  kBadJson,       // payload is not a JSON object
  kBadRequest,    // missing/ill-typed field, unknown op, version mismatch
  kBadSpec,       // cluster spec text failed to parse/validate
  kBadModel,      // unknown model name
  kBadSelector,   // VW selector unsatisfiable on the cluster
  kShuttingDown,  // server is draining; retry against a live instance
  kInternal,      // unexpected exception; message has details
};
const char* ErrorCodeName(ErrorCode code);

// ---- Minimal JSON reader ----
//
// Just enough JSON to decode protocol messages: one top-level object with
// string/number/bool/null values. Nested objects and arrays are
// syntax-checked and preserved as raw text (kRaw) — protocol messages are
// flat, so nothing in the tree decodes them further. Not a general-purpose
// parser; it exists because the repo's JSON machinery only ever needed to
// write, and the serve protocol is the first reader.
struct JsonValue {
  enum class Type { kString, kNumber, kBool, kNull, kRaw };
  Type type = Type::kNull;
  std::string str;       // kString: decoded text; kRaw: raw JSON text
  double num = 0.0;      // kNumber
  bool boolean = false;  // kBool
};

// Parses one JSON object into key -> value (later duplicate keys win, as in
// every lenient JSON reader). Returns false and fills `error` on anything
// that is not a single well-formed object.
bool ParseJsonObject(const std::string& text, std::map<std::string, JsonValue>* out,
                     std::string* error);

// Thread-safe strerror: formats `errno_value` without touching strerror's
// shared static buffer (strerror itself is not safe to call from the serve
// threads — two concurrent error paths would race on it).
std::string ErrnoString(int errno_value);

// ---- Framed stream I/O (POSIX fd) ----

// Writes one frame; loops over partial writes, suppresses SIGPIPE. Returns
// false and fills `error` on I/O failure or an oversized payload.
bool WriteFrame(int fd, const std::string& payload, uint32_t max_frame_bytes,
                std::string* error);

enum class FrameResult {
  kFrame,  // payload filled
  kEof,    // clean end of stream at a frame boundary
  kError,  // I/O failure, truncated frame, or oversized length prefix
};
// Reads one frame; blocks until a full frame, EOF, or error. EOF inside a
// frame (after the prefix, before the payload completes) is kError.
FrameResult ReadFrame(int fd, uint32_t max_frame_bytes, std::string* payload,
                      std::string* error);

// ---- Requests ----

// One decoded plan-service request. Field-by-field reference (defaults,
// units, which ops read which fields) lives in docs/serve-protocol.md.
struct PlanRequest {
  std::string op = "plan";  // plan | max_nm | stats | shutdown
  std::string id;           // opaque client tag, echoed into the response
  // Cluster: a hw::ClusterSpec text, or (when empty) paper node codes.
  std::string cluster_spec;
  std::string cluster_nodes = "VRGQ";
  std::string model = "resnet152";  // resnet152 | vgg19
  std::string selector;             // core::PickGpus selector for the VW
  int nm = 1;                       // plan: concurrent minibatches
  int nm_cap = 7;                   // max_nm: search ceiling (paper: 7)
  int batch_size = 32;              // per-VW minibatch size
  bool search_orders = true;        // try all distinct GPU orders
  // Partitioner search-tier knobs (plan | max_nm). `strategy` must name a
  // partition::SearchStrategy ("auto" | "exact" | "beam" | "hierarchical");
  // anything else is a bad_request. The response echoes the RESOLVED strategy
  // (auto never survives resolution), and non-exact resolutions fold these
  // knobs into the partition-cache key exactly like the batch benches do.
  std::string strategy = "auto";
  int beam_width = 8;          // beam search width (kBeam + coarse overflow)
  int rack_order_limit = 720;  // hierarchical within-rack enumeration cap

  // Serializes through the ResultRow JSON machinery (kProtocolVersion and
  // every non-default field).
  std::string ToJson() const;
};

// Decodes and validates a request payload. On failure returns false with
// `code`/`error` describing the rejection; `out` is default-initialized
// except for any fields decoded before the failure (callers must not use it
// on failure beyond error reporting).
bool ParsePlanRequest(const std::string& payload, PlanRequest* out, ErrorCode* code,
                      std::string* error);

}  // namespace hetpipe::serve
