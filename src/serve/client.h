#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "serve/protocol.h"

namespace hetpipe::serve {

// Blocking client for one hetpipe_serve connection. Call() pipelines
// naturally — a connection carries any number of request/response pairs in
// order — so a load generator opens one client per in-flight stream.
//
// Not thread-safe: one PlanClient per thread (the protocol has no request
// ids beyond the opaque echo tag, so interleaving writers would scramble
// response ordering anyway).
class PlanClient {
 public:
  PlanClient() = default;
  ~PlanClient();  // closes the connection

  PlanClient(const PlanClient&) = delete;
  PlanClient& operator=(const PlanClient&) = delete;

  // Connects over TCP. Returns false with `error` filled on failure;
  // reconnecting an open client closes the old connection first.
  bool Connect(const std::string& host, int port, std::string* error);
  bool connected() const { return fd_ >= 0; }
  void Close();

  // One round trip: sends the request, blocks for the response frame, and
  // decodes it into key -> value. Returns false with `error` filled on I/O
  // or framing failure (the connection is then closed — a protocol stream
  // with a lost frame boundary cannot be resynchronized). A server-side
  // error (response ok=false) is still a successful Call; inspect
  // (*response)["ok"] / ["error_code"].
  bool Call(const PlanRequest& request, std::map<std::string, JsonValue>* response,
            std::string* error);

  // Raw form used by Call: sends `request_json` verbatim, fills the response
  // payload undecoded.
  bool CallRaw(const std::string& request_json, std::string* response_json, std::string* error);

  uint32_t max_frame_bytes = kDefaultMaxFrameBytes;

 private:
  int fd_ = -1;
};

}  // namespace hetpipe::serve
