#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/layer.h"

namespace hetpipe::model {

// Families with published calibration data (see profiler.cc). kGeneric models
// use a default throughput table.
enum class ModelFamily {
  kResNet152,
  kVgg19,
  kGeneric,
};

// A DNN expressed as a chain of layers (residual blocks are fused into single
// chain elements, so a chain fully describes the paper's two models).
class ModelGraph {
 public:
  ModelGraph(std::string name, ModelFamily family, std::vector<Layer> layers);

  const std::string& name() const { return name_; }
  ModelFamily family() const { return family_; }
  int num_layers() const { return static_cast<int>(layers_.size()); }
  const Layer& layer(int i) const { return layers_.at(static_cast<size_t>(i)); }
  const std::vector<Layer>& layers() const { return layers_; }

  // Totals, per image where applicable.
  double total_fwd_flops() const { return total_fwd_flops_; }
  uint64_t total_param_bytes() const { return total_param_bytes_; }
  uint64_t total_stash_bytes() const { return total_stash_bytes_; }

  // Sum of param bytes over layers [first, last].
  uint64_t ParamBytesInRange(int first, int last) const;
  // Sum of stash bytes (per image) over layers [first, last].
  uint64_t StashBytesInRange(int first, int last) const;
  // Activation bytes per image crossing the boundary after layer i
  // (i.e. layer i's output feeding layer i+1).
  uint64_t BoundaryBytes(int i) const { return layer(i).out_bytes; }

  std::string Summary() const;

 private:
  std::string name_;
  ModelFamily family_;
  std::vector<Layer> layers_;
  double total_fwd_flops_ = 0.0;
  uint64_t total_param_bytes_ = 0;
  uint64_t total_stash_bytes_ = 0;
};

}  // namespace hetpipe::model
