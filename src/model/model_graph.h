#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/layer.h"

namespace hetpipe::model {

// Families with published calibration data (see profiler.cc). kGeneric models
// use a default throughput table.
enum class ModelFamily {
  kResNet152,
  kVgg19,
  kGeneric,
};

// A DNN expressed as a chain of layers (residual blocks are fused into single
// chain elements, so a chain fully describes the paper's two models).
class ModelGraph {
 public:
  ModelGraph(std::string name, ModelFamily family, std::vector<Layer> layers);

  const std::string& name() const { return name_; }
  ModelFamily family() const { return family_; }
  int num_layers() const { return static_cast<int>(layers_.size()); }
  const Layer& layer(int i) const { return layers_.at(static_cast<size_t>(i)); }
  const std::vector<Layer>& layers() const { return layers_; }

  // Totals, per image where applicable.
  double total_fwd_flops() const { return total_fwd_flops_; }
  uint64_t total_param_bytes() const { return total_param_bytes_; }
  uint64_t total_stash_bytes() const { return total_stash_bytes_; }

  // Sum of param bytes over layers [first, last]. O(1): a difference of two
  // prefix sums (exact — the addends are integers).
  uint64_t ParamBytesInRange(int first, int last) const;
  // Sum of stash bytes (per image) over layers [first, last]. O(1).
  uint64_t StashBytesInRange(int first, int last) const;
  // The original O(last - first) summation loops, retained as the oracle for
  // the prefix-sum equivalence tests. Semantically identical to the O(1)
  // forms above.
  uint64_t ParamBytesInRangeNaive(int first, int last) const;
  uint64_t StashBytesInRangeNaive(int first, int last) const;

  // Raw prefix arrays (num_layers() + 1 entries, prefix[i] = sum over layers
  // [0, i)) for the partitioner's DP inner loop, which cannot afford a
  // function call per state: sum over [first, last] = prefix[last+1] -
  // prefix[first].
  const uint64_t* ParamPrefix() const { return param_prefix_.data(); }
  const uint64_t* StashPrefix() const { return stash_prefix_.data(); }
  // Activation bytes per image crossing the boundary after layer i
  // (i.e. layer i's output feeding layer i+1).
  uint64_t BoundaryBytes(int i) const { return layer(i).out_bytes; }

  std::string Summary() const;

 private:
  std::string name_;
  ModelFamily family_;
  std::vector<Layer> layers_;
  // prefix[i] = sum over layers [0, i): the partitioner's stage-memory
  // queries hit these ranges inside its O(k n^2) DP, so they must be O(1).
  std::vector<uint64_t> param_prefix_;
  std::vector<uint64_t> stash_prefix_;
  double total_fwd_flops_ = 0.0;
  uint64_t total_param_bytes_ = 0;
  uint64_t total_stash_bytes_ = 0;
};

}  // namespace hetpipe::model
