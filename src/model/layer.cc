#include "model/layer.h"

namespace hetpipe::model {
namespace {

constexpr uint64_t kFloatBytes = 4;

uint64_t ActBytes(int c, int h, int w) {
  return static_cast<uint64_t>(c) * static_cast<uint64_t>(h) * static_cast<uint64_t>(w) *
         kFloatBytes;
}

}  // namespace

Layer MakeConv(const std::string& name, int k, int cin, int cout, int hout, int wout) {
  Layer layer;
  layer.name = name;
  layer.kind = LayerKind::kConv;
  // 2 * K^2 * Cin * Cout * Hout * Wout multiply-adds.
  layer.fwd_flops = 2.0 * k * k * cin * cout * static_cast<double>(hout) * wout;
  layer.param_bytes = (static_cast<uint64_t>(k) * k * cin * cout + static_cast<uint64_t>(cout)) *
                      kFloatBytes;
  layer.out_bytes = ActBytes(cout, hout, wout);
  // The output (post-ReLU, computed in place) is stashed for the backward pass.
  layer.stash_bytes = layer.out_bytes;
  return layer;
}

Layer MakePool(const std::string& name, int cout, int hout, int wout) {
  Layer layer;
  layer.name = name;
  layer.kind = LayerKind::kPool;
  // Comparison/accumulate cost, ~1 op per output element per 3x3 window.
  layer.fwd_flops = 9.0 * cout * static_cast<double>(hout) * wout;
  layer.param_bytes = 0;
  layer.out_bytes = ActBytes(cout, hout, wout);
  layer.stash_bytes = layer.out_bytes;
  return layer;
}

Layer MakeFc(const std::string& name, int in, int out) {
  Layer layer;
  layer.name = name;
  layer.kind = LayerKind::kFc;
  layer.fwd_flops = 2.0 * in * static_cast<double>(out);
  layer.param_bytes = (static_cast<uint64_t>(in) * out + static_cast<uint64_t>(out)) * kFloatBytes;
  layer.out_bytes = static_cast<uint64_t>(out) * kFloatBytes;
  layer.stash_bytes = layer.out_bytes;
  return layer;
}

Layer MakeBottleneckBlock(const std::string& name, int cin, int mid, int cout, int h, int w) {
  Layer layer;
  layer.name = name;
  layer.kind = LayerKind::kBlock;

  const double hw = static_cast<double>(h) * w;
  // conv1 1x1 cin->mid, conv2 3x3 mid->mid, conv3 1x1 mid->cout.
  double flops = 2.0 * cin * mid * hw;          // 1x1 reduce
  flops += 2.0 * 9.0 * mid * mid * hw;          // 3x3
  flops += 2.0 * mid * cout * hw;               // 1x1 expand
  uint64_t params = static_cast<uint64_t>(cin) * mid + 9ULL * mid * mid +
                    static_cast<uint64_t>(mid) * cout;
  // BN scale/shift for each conv output.
  params += 2ULL * (static_cast<uint64_t>(mid) + mid + cout);
  if (cin != cout) {
    // Projection shortcut.
    flops += 2.0 * cin * cout * hw;
    params += static_cast<uint64_t>(cin) * cout + 2ULL * cout;
  }
  layer.fwd_flops = flops;
  layer.param_bytes = params * kFloatBytes;
  layer.out_bytes = ActBytes(cout, h, w);
  // Stashed for backward: the two mid-channel intermediate activations, the
  // block output, and (because of batch norm + ReLU) the stored normalized
  // pre-activations — modeled as a 2.3x multiplier on the visible
  // activations, which is what makes ResNet-152 at batch 32 exceed a 6 GB
  // RTX 2060 (but fit the 8 GB Quadro P4000) as reported in §8.3.
  const uint64_t internal = ActBytes(mid, h, w) * 2 + layer.out_bytes;
  layer.stash_bytes = static_cast<uint64_t>(static_cast<double>(internal) * 2.3);
  return layer;
}

const char* LayerKindName(LayerKind kind) {
  switch (kind) {
    case LayerKind::kConv:
      return "conv";
    case LayerKind::kPool:
      return "pool";
    case LayerKind::kFc:
      return "fc";
    case LayerKind::kBlock:
      return "block";
    case LayerKind::kSoftmax:
      return "softmax";
  }
  return "?";
}

}  // namespace hetpipe::model
