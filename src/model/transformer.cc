#include "model/transformer.h"

namespace hetpipe::model {
namespace {

constexpr uint64_t kFloatBytes = 4;

// One transformer encoder block: multi-head attention (4 H*H projections),
// two layer norms, and the 2-layer feed-forward network.
Layer MakeEncoderBlock(const std::string& name, const TransformerConfig& c) {
  Layer layer;
  layer.name = name;
  layer.kind = LayerKind::kBlock;

  const double h = c.hidden;
  const double f = c.ffn_hidden;
  const double s = c.seq_len;

  // Params: Wq, Wk, Wv, Wo (4 * H^2) + FFN (2 * H * F) + biases + 2 LN.
  const uint64_t params = static_cast<uint64_t>(4.0 * h * h + 2.0 * h * f + 9.0 * h + f);
  layer.param_bytes = params * kFloatBytes;

  // FLOPs per sample (2 ops per MAC): projections 4*S*H^2, attention scores
  // and weighted sum 2 * S^2 * H, FFN 2*S*H*F.
  layer.fwd_flops = 2.0 * (4.0 * s * h * h + 2.0 * s * s * h + 2.0 * s * h * f);

  // Output: S x H activations per sample.
  layer.out_bytes = static_cast<uint64_t>(s * h) * kFloatBytes;
  // Stash for backward: block input, Q/K/V, attention probs (S x S per head
  // approximated as one S x S map), FFN hidden — roughly 5 S*H + S*S floats.
  layer.stash_bytes = static_cast<uint64_t>(5.0 * s * h + s * s + s * f) * kFloatBytes;
  return layer;
}

}  // namespace

ModelGraph BuildTransformer(const TransformerConfig& c) {
  std::vector<Layer> layers;

  // Token + position embeddings: a lookup, negligible FLOPs, heavy params.
  Layer embed;
  embed.name = "embed";
  embed.kind = LayerKind::kFc;
  embed.param_bytes =
      (static_cast<uint64_t>(c.vocab) + 512ULL) * static_cast<uint64_t>(c.hidden) * kFloatBytes;
  embed.fwd_flops = 2.0 * c.seq_len * c.hidden;
  embed.out_bytes = static_cast<uint64_t>(c.seq_len) * c.hidden * kFloatBytes;
  embed.stash_bytes = embed.out_bytes;
  layers.push_back(embed);

  for (int l = 0; l < c.layers; ++l) {
    layers.push_back(MakeEncoderBlock("enc" + std::to_string(l + 1), c));
  }

  // LM head: H -> vocab projection (weights often tied; counted once here as
  // compute only to avoid double-counting the embedding parameters).
  Layer head;
  head.name = "lm_head";
  head.kind = LayerKind::kFc;
  head.param_bytes = static_cast<uint64_t>(c.hidden) * kFloatBytes;  // bias-ish, tied weights
  head.fwd_flops = 2.0 * static_cast<double>(c.seq_len) * c.hidden * c.vocab;
  head.out_bytes = static_cast<uint64_t>(c.seq_len) * static_cast<uint64_t>(c.vocab) / 64 *
                   kFloatBytes;  // top-k logits slice kept resident
  head.stash_bytes = head.out_bytes;
  layers.push_back(head);

  return ModelGraph(c.name, ModelFamily::kGeneric, std::move(layers));
}

ModelGraph BuildBertLarge(int seq_len) {
  TransformerConfig c;
  c.name = "BERT-Large";
  c.layers = 24;
  c.hidden = 1024;
  c.ffn_hidden = 4096;
  c.seq_len = seq_len;
  return BuildTransformer(c);
}

ModelGraph BuildBertBase(int seq_len) {
  TransformerConfig c;
  c.name = "BERT-Base";
  c.layers = 12;
  c.hidden = 768;
  c.ffn_hidden = 3072;
  c.seq_len = seq_len;
  return BuildTransformer(c);
}

}  // namespace hetpipe::model
