#pragma once

#include "model/model_graph.h"

namespace hetpipe::model {

// VGG-19 for 224x224 ImageNet (Simonyan & Zisserman 2014): 16 conv layers in
// five groups, five maxpools, and three fully-connected layers
// (25088->4096->4096->1000). Totals: ~143.7M params (~548 MiB fp32, matching
// §8.3 of the HetPipe paper) and ~19.6 GFLOPs/image forward. The parameter
// mass is concentrated in fc6 (~102.8M params), which is what makes VGG-19
// the communication-heavy model of the evaluation.
ModelGraph BuildVgg19();

// VGG-16 variant, used in tests/ablations.
ModelGraph BuildVgg16();

}  // namespace hetpipe::model
