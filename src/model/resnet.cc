#include "model/resnet.h"

#include <string>

namespace hetpipe::model {

ModelGraph BuildBottleneckResNet(const std::string& name, int b1, int b2, int b3, int b4) {
  std::vector<Layer> layers;

  // Stem: 7x7/2 conv to 64 channels at 112x112, then 3x3/2 maxpool to 56x56.
  layers.push_back(MakeConv("conv1", 7, 3, 64, 112, 112));
  layers.push_back(MakePool("maxpool", 64, 56, 56));

  struct StageSpec {
    int blocks;
    int mid;
    int out;
    int hw;
  };
  const StageSpec stages[] = {
      {b1, 64, 256, 56},
      {b2, 128, 512, 28},
      {b3, 256, 1024, 14},
      {b4, 512, 2048, 7},
  };

  int cin = 64;
  for (int s = 0; s < 4; ++s) {
    const StageSpec& st = stages[s];
    for (int b = 0; b < st.blocks; ++b) {
      const std::string block_name =
          "res" + std::to_string(s + 2) + "_" + std::to_string(b + 1);
      layers.push_back(MakeBottleneckBlock(block_name, cin, st.mid, st.out, st.hw, st.hw));
      cin = st.out;
    }
  }

  layers.push_back(MakePool("avgpool", 2048, 1, 1));
  layers.push_back(MakeFc("fc1000", 2048, 1000));

  const ModelFamily family =
      (b1 == 3 && b2 == 8 && b3 == 36 && b4 == 3) ? ModelFamily::kResNet152
                                                  : ModelFamily::kGeneric;
  return ModelGraph(name, family, std::move(layers));
}

ModelGraph BuildResNet152() { return BuildBottleneckResNet("ResNet-152", 3, 8, 36, 3); }

}  // namespace hetpipe::model
