#pragma once

#include "model/model_graph.h"

namespace hetpipe::model {

// Transformer-encoder model builders. The paper motivates HetPipe with the
// steady growth of model sizes ("Attention Is All You Need" is among its
// citations); these builders provide modern large-model workloads beyond the
// two CNNs of the evaluation, at encoder-block granularity (a block is the
// natural partition unit, like a residual block).
struct TransformerConfig {
  std::string name = "Transformer";
  int layers = 24;        // encoder blocks
  int hidden = 1024;      // model dimension d_model
  int ffn_hidden = 4096;  // feed-forward inner dimension (usually 4 * hidden)
  int seq_len = 128;      // tokens per sample
  int vocab = 30522;      // embedding table rows
};

// Generic builder: embedding + `layers` encoder blocks + LM head.
ModelGraph BuildTransformer(const TransformerConfig& config);

// BERT-Large (Devlin et al.): 24 layers, hidden 1024, ffn 4096, ~340M params
// (~1.3 GiB fp32) — a model that genuinely needs pipeline parallelism on
// whimpy GPUs.
ModelGraph BuildBertLarge(int seq_len = 128);

// BERT-Base: 12 layers, hidden 768, ~110M params.
ModelGraph BuildBertBase(int seq_len = 128);

}  // namespace hetpipe::model
