#include "model/profiler.h"

#include <array>
#include <cassert>

namespace hetpipe::model {
namespace {

// Per-layer kernel-launch / framework overhead. Backward passes launch more
// kernels (two gradient computations per conv).
constexpr double kFwdLaunchOverheadS = 25e-6;
constexpr double kBwdLaunchOverheadS = 45e-6;

// Calibration: effective TFLOP/s by (family, GPU), with FLOPs counted as 2
// ops per multiply-add (matching layer.cc). Derived from the absolute Nm=1
// throughputs in Fig. 3 of the paper: Nm=1 pipelining is sequential
// execution, so e.g. VVVV at 96 img/s on ResNet-152 implies the TITAN V
// sustains ~3 * 22.6 GF * 96 ~ 6.5 TFLOP/s on ResNet kernels. The
// ResNet-class numbers live in hw::GpuSpec::effective_tflops (the one copy
// the allocator ranking and cache fingerprints read too); only VGG's large
// uniform convolutions, which run markedly closer to peak than ResNet's
// small bottleneck kernels, need this separate table.
constexpr std::array<double, hw::kNumGpuTypes> kVggTflops = {
    // V     R     G     Q
    14.3, 12.85, 7.43, 6.10,
};

// GPU classes registered beyond Table 1 declare one sustained-TFLOPS number,
// calibrated like kResNetTflops. VGG's large uniform convolutions run about
// 2x closer to peak than ResNet's small bottleneck kernels on every paper
// class, so the same factor is applied to registered classes.
constexpr double kVggOverResNet = 2.0;

}  // namespace

double EffectiveTflops(ModelFamily family, hw::GpuType gpu) {
  const auto idx = static_cast<size_t>(gpu);
  const double base = hw::SpecOf(gpu).effective_tflops;
  if (family != ModelFamily::kVgg19) {
    return base;  // ResNet-class calibration, for built-in and registered alike
  }
  return idx < static_cast<size_t>(hw::kNumGpuTypes) ? kVggTflops[idx]
                                                     : base * kVggOverResNet;
}

ModelProfile::ModelProfile(const ModelGraph& graph, int batch_size)
    : graph_(&graph), batch_size_(batch_size), times_(static_cast<size_t>(hw::NumGpuTypes())) {
  const size_t n = static_cast<size_t>(graph.num_layers());
  fwd_cum_.resize(times_.size());
  bwd_cum_.resize(times_.size());
  total_cum_by_last_.resize(times_.size());
  for (int t = 0; t < static_cast<int>(times_.size()); ++t) {
    const auto gpu = static_cast<hw::GpuType>(t);
    const double flops_per_s = EffectiveTflops(graph.family(), gpu) * 1e12;
    auto& per_layer = times_[static_cast<size_t>(t)];
    per_layer.reserve(n);
    for (const Layer& layer : graph.layers()) {
      const double fwd_flops = layer.fwd_flops * batch_size_;
      LayerTime lt;
      lt.fwd_s = fwd_flops / flops_per_s + kFwdLaunchOverheadS;
      // Backward computes gradients w.r.t. both inputs and weights: ~2x the
      // forward FLOPs.
      lt.bwd_s = 2.0 * fwd_flops / flops_per_s + kBwdLaunchOverheadS;
      per_layer.push_back(lt);
    }

    // Cumulative stage-time tables: row `first` holds running sums over
    // [first, last] for every last >= first, accumulated in the same
    // left-to-right order as the naive loops so each entry is bit-identical
    // to the loop result (see the header). Built eagerly for every
    // registered class — a const ModelProfile is shared across sweep
    // threads, so lazy fill would put synchronization on the DP hot path to
    // save ~n^2 doubles (tens of KiB at block granularity) per unused class.
    auto& fwd = fwd_cum_[static_cast<size_t>(t)];
    auto& bwd = bwd_cum_[static_cast<size_t>(t)];
    auto& tot = total_cum_by_last_[static_cast<size_t>(t)];
    fwd.assign(n * n, 0.0);
    bwd.assign(n * n, 0.0);
    tot.assign(n * n, 0.0);
    for (size_t first = 0; first < n; ++first) {
      double fwd_acc = 0.0;
      double bwd_acc = 0.0;
      for (size_t last = first; last < n; ++last) {
        fwd_acc += per_layer[last].fwd_s;
        bwd_acc += per_layer[last].bwd_s;
        fwd[first * n + last] = fwd_acc;
        bwd[first * n + last] = bwd_acc;
        // Transposed combined entry: one fwd + bwd addition, same operands
        // and order as the DP's scalar path, so consumers see identical bits.
        tot[last * n + first] = fwd_acc + bwd_acc;
      }
    }
  }
}

double ModelProfile::StageFwdTime(int first, int last, hw::GpuType gpu) const {
  if (last < first) {
    return 0.0;
  }
  assert(first >= 0 && last < graph_->num_layers());
  return fwd_cum_.at(static_cast<size_t>(gpu))[CumIndex(first, last)];
}

double ModelProfile::StageBwdTime(int first, int last, hw::GpuType gpu) const {
  if (last < first) {
    return 0.0;
  }
  assert(first >= 0 && last < graph_->num_layers());
  return bwd_cum_.at(static_cast<size_t>(gpu))[CumIndex(first, last)];
}

double ModelProfile::StageTotalTime(int first, int last, hw::GpuType gpu) const {
  return StageFwdTime(first, last, gpu) + StageBwdTime(first, last, gpu);
}

double ModelProfile::StageFwdTimeNaive(int first, int last, hw::GpuType gpu) const {
  double t = 0.0;
  for (int i = first; i <= last; ++i) {
    t += TimeOf(i, gpu).fwd_s;
  }
  return t;
}

double ModelProfile::StageBwdTimeNaive(int first, int last, hw::GpuType gpu) const {
  double t = 0.0;
  for (int i = first; i <= last; ++i) {
    t += TimeOf(i, gpu).bwd_s;
  }
  return t;
}

double ModelProfile::StageTotalTimeNaive(int first, int last, hw::GpuType gpu) const {
  return StageFwdTimeNaive(first, last, gpu) + StageBwdTimeNaive(first, last, gpu);
}

double ModelProfile::FullModelTime(hw::GpuType gpu) const {
  return StageTotalTime(0, graph_->num_layers() - 1, gpu);
}

uint64_t ModelProfile::BoundaryTransferBytes(int layer) const {
  return graph_->BoundaryBytes(layer) * static_cast<uint64_t>(batch_size_);
}

}  // namespace hetpipe::model
