#include "model/vgg.h"

#include <string>
#include <vector>

namespace hetpipe::model {
namespace {

// Builds a VGG model given the number of convs per group (VGG-16: 2,2,3,3,3;
// VGG-19: 2,2,4,4,4).
ModelGraph BuildVgg(const std::string& name, ModelFamily family,
                    const std::vector<int>& convs_per_group) {
  std::vector<Layer> layers;

  const int group_channels[] = {64, 128, 256, 512, 512};
  const int group_resolution[] = {224, 112, 56, 28, 14};

  int cin = 3;
  for (int g = 0; g < 5; ++g) {
    const int cout = group_channels[g];
    const int res = group_resolution[g];
    for (int c = 0; c < convs_per_group[static_cast<size_t>(g)]; ++c) {
      const std::string conv_name =
          "conv" + std::to_string(g + 1) + "_" + std::to_string(c + 1);
      layers.push_back(MakeConv(conv_name, 3, cin, cout, res, res));
      cin = cout;
    }
    layers.push_back(MakePool("pool" + std::to_string(g + 1), cout, res / 2, res / 2));
  }

  // 7x7x512 = 25088 inputs to the classifier.
  layers.push_back(MakeFc("fc6", 25088, 4096));
  layers.push_back(MakeFc("fc7", 4096, 4096));
  layers.push_back(MakeFc("fc8", 4096, 1000));

  return ModelGraph(name, family, std::move(layers));
}

}  // namespace

ModelGraph BuildVgg19() {
  return BuildVgg("VGG-19", ModelFamily::kVgg19, {2, 2, 4, 4, 4});
}

ModelGraph BuildVgg16() {
  return BuildVgg("VGG-16", ModelFamily::kGeneric, {2, 2, 3, 3, 3});
}

}  // namespace hetpipe::model
