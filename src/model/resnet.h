#pragma once

#include "model/model_graph.h"

namespace hetpipe::model {

// ResNet-152 for 224x224 ImageNet (He et al. 2016), emitted at residual-block
// granularity: conv1, maxpool, 3+8+36+3 bottleneck blocks, avgpool, fc.
// Totals: ~60.2M params (~230 MiB fp32, matching §8.3 of the HetPipe paper)
// and ~11.6 GFLOPs/image forward.
ModelGraph BuildResNet152();

// Generic bottleneck ResNet builder used for tests and ablations.
// `blocks_per_stage` gives the number of bottleneck blocks in each of the
// four stages (ResNet-152 is {3, 8, 36, 3}; ResNet-50 is {3, 4, 6, 3}).
ModelGraph BuildBottleneckResNet(const std::string& name, int b1, int b2, int b3, int b4);

}  // namespace hetpipe::model
