#pragma once

#include <cstdint>
#include <string>

namespace hetpipe::model {

// Coarse layer taxonomy. ResNet bottleneck blocks are emitted as single
// kBlock layers: a residual block cannot be split across a partition
// boundary, so blocks are the natural partitioning granularity.
enum class LayerKind {
  kConv,
  kPool,
  kFc,
  kBlock,    // residual bottleneck block (3 convs + BN + shortcut)
  kSoftmax,
};

// One layer (or fused block) of a DNN, described by the quantities the
// HetPipe partitioner and pipeline simulator need. All per-image quantities
// are for a single sample; multiply by the minibatch size for totals.
struct Layer {
  std::string name;
  LayerKind kind = LayerKind::kConv;

  // Forward-pass FLOPs for one image. The backward pass is modeled as 2x
  // (gradient w.r.t. activations + gradient w.r.t. weights).
  double fwd_flops = 0.0;

  // Parameter bytes (fp32 weights + biases / BN scales).
  uint64_t param_bytes = 0;

  // Output activation bytes per image — this is what crosses a partition
  // boundary if the model is cut after this layer.
  uint64_t out_bytes = 0;

  // Activation bytes per image this layer must keep resident from its forward
  // pass until its backward pass (its output plus block-internal activations;
  // for BN blocks this includes stored normalized inputs).
  uint64_t stash_bytes = 0;
};

// Convenience constructors that derive the cost fields from layer shapes.

// k x k convolution (+bias) producing hout x wout x cout from cin channels.
Layer MakeConv(const std::string& name, int k, int cin, int cout, int hout, int wout);

// Max/avg pool: no params, negligible FLOPs relative to convs.
Layer MakePool(const std::string& name, int cout, int hout, int wout);

// Fully connected in -> out.
Layer MakeFc(const std::string& name, int in, int out);

// ResNet bottleneck block at spatial resolution h x w: 1x1 (cin->mid),
// 3x3 (mid->mid), 1x1 (mid->cout), batch norms, shortcut (projection conv if
// cin != cout).
Layer MakeBottleneckBlock(const std::string& name, int cin, int mid, int cout, int h, int w);

const char* LayerKindName(LayerKind kind);

}  // namespace hetpipe::model
