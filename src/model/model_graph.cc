#include "model/model_graph.h"

#include <cassert>
#include <sstream>
#include <utility>

namespace hetpipe::model {

ModelGraph::ModelGraph(std::string name, ModelFamily family, std::vector<Layer> layers)
    : name_(std::move(name)), family_(family), layers_(std::move(layers)) {
  param_prefix_.reserve(layers_.size() + 1);
  stash_prefix_.reserve(layers_.size() + 1);
  param_prefix_.push_back(0);
  stash_prefix_.push_back(0);
  for (const Layer& layer : layers_) {
    total_fwd_flops_ += layer.fwd_flops;
    total_param_bytes_ += layer.param_bytes;
    total_stash_bytes_ += layer.stash_bytes;
    param_prefix_.push_back(param_prefix_.back() + layer.param_bytes);
    stash_prefix_.push_back(stash_prefix_.back() + layer.stash_bytes);
  }
}

uint64_t ModelGraph::ParamBytesInRange(int first, int last) const {
  if (last < first) {
    return 0;
  }
  assert(first >= 0 && last < num_layers());
  return param_prefix_[static_cast<size_t>(last) + 1] - param_prefix_[static_cast<size_t>(first)];
}

uint64_t ModelGraph::StashBytesInRange(int first, int last) const {
  if (last < first) {
    return 0;
  }
  assert(first >= 0 && last < num_layers());
  return stash_prefix_[static_cast<size_t>(last) + 1] - stash_prefix_[static_cast<size_t>(first)];
}

uint64_t ModelGraph::ParamBytesInRangeNaive(int first, int last) const {
  uint64_t total = 0;
  for (int i = first; i <= last; ++i) {
    total += layer(i).param_bytes;
  }
  return total;
}

uint64_t ModelGraph::StashBytesInRangeNaive(int first, int last) const {
  uint64_t total = 0;
  for (int i = first; i <= last; ++i) {
    total += layer(i).stash_bytes;
  }
  return total;
}

std::string ModelGraph::Summary() const {
  std::ostringstream os;
  os << name_ << ": " << layers_.size() << " layers, "
     << static_cast<double>(total_param_bytes_) / (1 << 20) << " MiB params, "
     << total_fwd_flops_ / 1e9 << " GFLOPs/image fwd";
  return os.str();
}

}  // namespace hetpipe::model
