#pragma once

#include <cstdint>
#include <vector>

#include "hw/gpu_spec.h"
#include "model/model_graph.h"

namespace hetpipe::model {

// Calibrated effective throughput in TFLOP/s that `gpu` sustains on layers of
// `family`. This plays the role of the paper's profiling step (§7), which
// measures per-layer compute time on every GPU type in the cluster: here
// per-layer time = FLOPs / effective-throughput + launch overhead, with the
// throughput constants fit to the absolute single-virtual-worker throughputs
// published in Fig. 3 of the paper. GPU classes registered beyond Table 1 use
// their declared sustained TFLOPS (ResNet-class kernels), scaled up for VGG's
// large uniform convolutions the same ~2x the paper classes exhibit.
double EffectiveTflops(ModelFamily family, hw::GpuType gpu);

// Per-minibatch forward/backward execution time of a layer on some GPU.
struct LayerTime {
  double fwd_s = 0.0;
  double bwd_s = 0.0;
  double total() const { return fwd_s + bwd_s; }
};

// Profile of one model at a fixed minibatch size: per-layer, per-GPU-type
// compute times plus boundary transfer sizes. This is the input to the
// partitioner and the pipeline simulator.
class ModelProfile {
 public:
  ModelProfile(const ModelGraph& graph, int batch_size);

  const ModelGraph& graph() const { return *graph_; }
  int batch_size() const { return batch_size_; }
  int num_layers() const { return graph_->num_layers(); }

  // Per-minibatch time of one layer on `gpu`. Throws std::out_of_range for
  // GPU classes registered after construction; the layer index is only
  // bounds-checked in debug builds (release paths index directly).
  const LayerTime& TimeOf(int layer, hw::GpuType gpu) const {
    return times_.at(static_cast<size_t>(gpu))[static_cast<size_t>(layer)];
  }

  // Per-minibatch forward / backward / total compute time of layers
  // [first, last] on `gpu`. O(1): served from cumulative-sum tables anchored
  // at every start layer, precomputed at construction. Each table row is
  // accumulated left-to-right exactly like the naive loop, so the returned
  // double is bit-identical to what the loop computes — a plain
  // prefix-difference would drift in the last ulp (floating-point addition is
  // not associative) and could flip near-tie decisions in the partitioner DP.
  double StageFwdTime(int first, int last, hw::GpuType gpu) const;
  double StageBwdTime(int first, int last, hw::GpuType gpu) const;
  double StageTotalTime(int first, int last, hw::GpuType gpu) const;

  // The original O(last - first) summation loops, retained as the oracle for
  // the cumulative-table equivalence tests (results are bit-identical).
  double StageFwdTimeNaive(int first, int last, hw::GpuType gpu) const;
  double StageBwdTimeNaive(int first, int last, hw::GpuType gpu) const;
  double StageTotalTimeNaive(int first, int last, hw::GpuType gpu) const;

  // Raw cumulative tables (num_layers()^2 entries, entry first * num_layers()
  // + last = Stage{Fwd,Bwd}Time(first, last, gpu)) for the partitioner's DP
  // inner loop, which cannot afford a bounds-checked call per state. Throws
  // std::out_of_range for classes registered after construction.
  const double* FwdCum(hw::GpuType gpu) const {
    return fwd_cum_.at(static_cast<size_t>(gpu)).data();
  }
  const double* BwdCum(hw::GpuType gpu) const {
    return bwd_cum_.at(static_cast<size_t>(gpu)).data();
  }

  // Transposed combined table: entry last * num_layers() + first =
  // FwdCum[first * n + last] + BwdCum[first * n + last], i.e. the total
  // compute time of stage [first, last]. The DP inner loop scans candidate
  // split points `first` at a fixed `last`, so this layout makes that scan a
  // contiguous unit-stride pass (the row-major tables above stride by n
  // there, which defeats vectorization). Each entry is the single addition
  // fwd + bwd of the two table entries — the same operands in the same order
  // the scalar loop adds them — so reading it is bit-identical to computing
  // the sum in the loop.
  const double* TotalCumByLast(hw::GpuType gpu) const {
    return total_cum_by_last_.at(static_cast<size_t>(gpu)).data();
  }

  // Whole-model per-minibatch compute (fwd+bwd) on `gpu`.
  double FullModelTime(hw::GpuType gpu) const;

  // Bytes of activations crossing the boundary after `layer` for one
  // minibatch (the backward-pass gradient transfer has the same size).
  uint64_t BoundaryTransferBytes(int layer) const;

 private:
  // Row-major index of the per-type cumulative tables: entry (first, last).
  size_t CumIndex(int first, int last) const {
    return static_cast<size_t>(first) * static_cast<size_t>(graph_->num_layers()) +
           static_cast<size_t>(last);
  }

  const ModelGraph* graph_;
  int batch_size_;
  // times_[gpu_type][layer], covering every GPU class known at construction
  // (TimeOf throws for classes registered later).
  std::vector<std::vector<LayerTime>> times_;
  // fwd_cum_[gpu_type][first * n + last] = sum of fwd_s over layers
  // [first, last], accumulated left-to-right (likewise bwd_cum_). n^2 doubles
  // per type — layer chains are block-granular (tens of entries), so the
  // tables are a few tens of KiB and are built once per profile.
  std::vector<std::vector<double>> fwd_cum_;
  std::vector<std::vector<double>> bwd_cum_;
  // total_cum_by_last_[gpu_type][last * n + first] = fwd_cum_ + bwd_cum_ at
  // (first, last): the transposed, combined layout the partitioner DP reads
  // contiguously (see TotalCumByLast).
  std::vector<std::vector<double>> total_cum_by_last_;
};

}  // namespace hetpipe::model
