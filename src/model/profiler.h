#pragma once

#include <cstdint>
#include <vector>

#include "hw/gpu_spec.h"
#include "model/model_graph.h"

namespace hetpipe::model {

// Calibrated effective throughput in TFLOP/s that `gpu` sustains on layers of
// `family`. This plays the role of the paper's profiling step (§7), which
// measures per-layer compute time on every GPU type in the cluster: here
// per-layer time = FLOPs / effective-throughput + launch overhead, with the
// throughput constants fit to the absolute single-virtual-worker throughputs
// published in Fig. 3 of the paper. GPU classes registered beyond Table 1 use
// their declared sustained TFLOPS (ResNet-class kernels), scaled up for VGG's
// large uniform convolutions the same ~2x the paper classes exhibit.
double EffectiveTflops(ModelFamily family, hw::GpuType gpu);

// Per-minibatch forward/backward execution time of a layer on some GPU.
struct LayerTime {
  double fwd_s = 0.0;
  double bwd_s = 0.0;
  double total() const { return fwd_s + bwd_s; }
};

// Profile of one model at a fixed minibatch size: per-layer, per-GPU-type
// compute times plus boundary transfer sizes. This is the input to the
// partitioner and the pipeline simulator.
class ModelProfile {
 public:
  ModelProfile(const ModelGraph& graph, int batch_size);

  const ModelGraph& graph() const { return *graph_; }
  int batch_size() const { return batch_size_; }
  int num_layers() const { return graph_->num_layers(); }

  // Per-minibatch time of one layer on `gpu`.
  const LayerTime& TimeOf(int layer, hw::GpuType gpu) const;

  // Per-minibatch forward / backward / total compute time of layers
  // [first, last] on `gpu`.
  double StageFwdTime(int first, int last, hw::GpuType gpu) const;
  double StageBwdTime(int first, int last, hw::GpuType gpu) const;
  double StageTotalTime(int first, int last, hw::GpuType gpu) const;

  // Whole-model per-minibatch compute (fwd+bwd) on `gpu`.
  double FullModelTime(hw::GpuType gpu) const;

  // Bytes of activations crossing the boundary after `layer` for one
  // minibatch (the backward-pass gradient transfer has the same size).
  uint64_t BoundaryTransferBytes(int layer) const;

 private:
  const ModelGraph* graph_;
  int batch_size_;
  // times_[gpu_type][layer], covering every GPU class known at construction
  // (TimeOf throws for classes registered later).
  std::vector<std::vector<LayerTime>> times_;
};

}  // namespace hetpipe::model
