#include "pipeline/trace_check.h"

#include <algorithm>
#include <cstdio>
#include <map>

namespace hetpipe::pipeline {

std::optional<Task> ParseTaskEvent(const std::string& name) {
  Task task;
  long long minibatch = 0;
  int partition = 0;
  if (std::sscanf(name.c_str(), "FW(M%lld,P%d)", &minibatch, &partition) == 2) {
    task.kind = TaskKind::kForward;
  } else if (std::sscanf(name.c_str(), "BW(M%lld,P%d)", &minibatch, &partition) == 2) {
    task.kind = TaskKind::kBackward;
  } else if (std::sscanf(name.c_str(), "FWBW(M%lld,P%d)", &minibatch, &partition) == 2) {
    task.kind = TaskKind::kForwardBackward;
  } else {
    return std::nullopt;
  }
  task.minibatch = minibatch;
  task.stage = partition - 1;
  return task;
}

namespace {

struct Execution {
  Task task;
  sim::SimTime start;
  sim::SimTime end;
};

}  // namespace

TraceCheckResult ValidatePipelineTrace(const std::vector<sim::TraceEvent>& events,
                                       int num_stages, int nm) {
  TraceCheckResult result;

  std::vector<Execution> execs;
  for (const sim::TraceEvent& e : events) {
    if (const auto task = ParseTaskEvent(e.name)) {
      execs.push_back({*task, e.start, e.end});
    }
  }
  std::sort(execs.begin(), execs.end(),
            [](const Execution& a, const Execution& b) { return a.start < b.start; });

  // Per-stage ordering and overlap (conditions 1-3).
  std::vector<int64_t> last_fw(static_cast<size_t>(num_stages), 0);
  std::vector<int64_t> last_bw(static_cast<size_t>(num_stages), 0);
  std::vector<sim::SimTime> stage_free(static_cast<size_t>(num_stages), 0.0);
  for (const Execution& e : execs) {
    const auto q = static_cast<size_t>(e.task.stage);
    if (e.start < stage_free[q] - 1e-12) {
      result.Fail("overlap at stage " + std::to_string(e.task.stage) + ": " +
                  ToString(e.task));
    }
    stage_free[q] = std::max(stage_free[q], e.end);
    const bool is_fw = e.task.kind != TaskKind::kBackward;
    const bool is_bw = e.task.kind != TaskKind::kForward;
    if (is_fw) {
      if (e.task.minibatch != last_fw[q] + 1) {
        result.Fail("forward order violated at stage " + std::to_string(e.task.stage) + ": " +
                    ToString(e.task) + " after M" + std::to_string(last_fw[q]));
      }
      last_fw[q] = e.task.minibatch;
    }
    if (is_bw) {
      if (e.task.minibatch != last_bw[q] + 1) {
        result.Fail("backward order violated at stage " + std::to_string(e.task.stage) + ": " +
                    ToString(e.task) + " after M" + std::to_string(last_bw[q]));
      }
      last_bw[q] = e.task.minibatch;
    }
  }

  // Dataflow causality (4) and the local-staleness window (5).
  std::map<std::pair<int64_t, int>, sim::SimTime> fw_end;   // (minibatch, stage)
  std::map<std::pair<int64_t, int>, sim::SimTime> bwd_end;  // backward work end
  std::map<int64_t, sim::SimTime> complete;                 // minibatch done at stage 0
  for (const Execution& e : execs) {
    if (e.task.kind != TaskKind::kBackward) {
      fw_end[{e.task.minibatch, e.task.stage}] = e.end;
    }
    if (e.task.kind != TaskKind::kForward) {
      bwd_end[{e.task.minibatch, e.task.stage}] = e.end;
      if (e.task.stage == 0) {
        complete[e.task.minibatch] = e.end;
      }
    }
  }
  for (const Execution& e : execs) {
    const bool starts_fw = e.task.kind != TaskKind::kBackward;
    if (starts_fw && e.task.stage > 0) {
      const auto it = fw_end.find({e.task.minibatch, e.task.stage - 1});
      if (it == fw_end.end() || e.start < it->second - 1e-12) {
        result.Fail("FW causality violated: " + ToString(e.task));
      }
    }
    if (e.task.kind == TaskKind::kBackward && e.task.stage < num_stages - 1) {
      const auto it = bwd_end.find({e.task.minibatch, e.task.stage + 1});
      if (it == bwd_end.end() || e.start < it->second - 1e-12) {
        result.Fail("BW causality violated: " + ToString(e.task));
      }
    }
    if (starts_fw && e.task.stage == 0 && e.task.minibatch > nm) {
      const auto it = complete.find(e.task.minibatch - nm);
      if (it == complete.end() || e.start < it->second - 1e-12) {
        result.Fail("local staleness window violated: " + ToString(e.task) +
                    " started before M" + std::to_string(e.task.minibatch - nm) + " completed");
      }
    }
  }
  return result;
}

}  // namespace hetpipe::pipeline
