#pragma once

#include <cstdint>
#include <string>

namespace hetpipe::pipeline {

// Work items scheduled on a pipeline stage's GPU. The last stage fuses the
// forward and backward pass of a minibatch into one task (§4: "in the last
// partition, processing a forward pass immediately followed by a backward
// pass is executed as a single task").
enum class TaskKind {
  kForward,
  kBackward,
  kForwardBackward,
};

struct Task {
  TaskKind kind = TaskKind::kForward;
  int64_t minibatch = 0;  // 1-indexed, as in the paper's M_{p,k} notation
  int stage = 0;          // 0-indexed partition / GPU
};

const char* TaskKindName(TaskKind kind);
std::string ToString(const Task& task);

}  // namespace hetpipe::pipeline
