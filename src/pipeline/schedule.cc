#include "pipeline/schedule.h"

namespace hetpipe::pipeline {

void StageQueue::MakeAvailable(const Task& task) { queue_.push_back(task); }

bool StageQueue::Eligible(const Task& task) const {
  switch (task.kind) {
    case TaskKind::kForward:
      return task.minibatch == next_fw_;
    case TaskKind::kBackward:
      return task.minibatch == next_bw_;
    case TaskKind::kForwardBackward:
      return task.minibatch == next_fw_ && task.minibatch == next_bw_;
  }
  return false;
}

void StageQueue::MarkStarted(const Task& task) {
  switch (task.kind) {
    case TaskKind::kForward:
      ++next_fw_;
      break;
    case TaskKind::kBackward:
      ++next_bw_;
      break;
    case TaskKind::kForwardBackward:
      ++next_fw_;
      ++next_bw_;
      break;
  }
}

std::optional<Task> StageQueue::PickNext() {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (Eligible(*it)) {
      Task task = *it;
      queue_.erase(it);
      MarkStarted(task);
      return task;
    }
  }
  return std::nullopt;
}

}  // namespace hetpipe::pipeline
