#include "pipeline/task.h"

#include <sstream>

namespace hetpipe::pipeline {

const char* TaskKindName(TaskKind kind) {
  switch (kind) {
    case TaskKind::kForward:
      return "FW";
    case TaskKind::kBackward:
      return "BW";
    case TaskKind::kForwardBackward:
      return "FWBW";
  }
  return "?";
}

std::string ToString(const Task& task) {
  std::ostringstream os;
  os << TaskKindName(task.kind) << "(M" << task.minibatch << ",P" << task.stage + 1 << ")";
  return os.str();
}

}  // namespace hetpipe::pipeline
