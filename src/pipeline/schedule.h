#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "pipeline/task.h"

namespace hetpipe::pipeline {

// Ready-queue of one pipeline stage, enforcing the paper's three scheduling
// conditions (§4):
//   1. FW of minibatch p runs only after FW of every p' < p has run here;
//   2. BW of minibatch p runs only after BW of every p' < p has run here;
//   3. among eligible tasks, FIFO (by arrival order).
// Tasks become *available* when their input arrives (activations from the
// previous stage, gradients from the next); PickNext returns the first
// available task whose ordering precondition holds.
class StageQueue {
 public:
  explicit StageQueue(int stage) : stage_(stage) {}

  // Registers that `task`'s inputs have arrived.
  void MakeAvailable(const Task& task);

  // Returns (and removes) the first eligible task in FIFO order, or nullopt.
  std::optional<Task> PickNext();

  bool empty() const { return queue_.empty(); }
  size_t size() const { return queue_.size(); }
  int64_t next_forward() const { return next_fw_; }
  int64_t next_backward() const { return next_bw_; }

 private:
  bool Eligible(const Task& task) const;
  void MarkStarted(const Task& task);

  int stage_;
  std::deque<Task> queue_;  // arrival order
  int64_t next_fw_ = 1;     // smallest minibatch whose FW has not yet started
  int64_t next_bw_ = 1;
};

}  // namespace hetpipe::pipeline
