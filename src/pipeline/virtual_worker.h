#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "partition/partitioner.h"
#include "pipeline/schedule.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "sim/stats.h"
#include "sim/trace.h"

namespace hetpipe::pipeline {

// Decides whether a virtual worker may inject its next minibatch. The WSP
// coordinator (wsp/param_server.h) implements this to enforce the global
// staleness bound; OpenGate is used for single-virtual-worker experiments.
class InjectionGate {
 public:
  virtual ~InjectionGate() = default;

  // Returns true if `vw` may start minibatch `p` (1-indexed) now. If not,
  // the gate keeps `wake` and invokes it exactly once when injection becomes
  // permitted; the virtual worker then retries.
  virtual bool RequestInjection(int vw, int64_t p, std::function<void()> wake) = 0;

  // Called when `vw` has locally completed all minibatches of wave `wave`
  // (0-indexed) — the point where WSP pushes the wave's aggregated update.
  virtual void OnWaveComplete(int vw, int64_t wave) = 0;
};

// A gate that always allows injection (pure pipelined model parallelism).
class OpenGate final : public InjectionGate {
 public:
  bool RequestInjection(int vw, int64_t p, std::function<void()> wake) override;
  void OnWaveComplete(int vw, int64_t wave) override;
};

struct VirtualWorkerOptions {
  int nm = 1;                   // concurrent minibatches (local staleness = nm - 1)
  double jitter_cv = 0.0;       // per-task iid jitter (coefficient of variation)
  // Correlated slowdowns, the straggler source real clusters have:
  // a per-wave speed factor (resampled each wave, cv = drift_cv) and a
  // persistent per-VW speed bias (fixed for the run, cv = speed_bias_cv).
  double drift_cv = 0.0;
  double speed_bias_cv = 0.0;
  uint64_t seed = 1;            // jitter RNG seed
  int64_t max_minibatches = 0;  // stop injecting after this many (0 = unlimited)
  // If set, every task execution (and its input transfer) is recorded here:
  // lane = stage index, category = forward/backward/fwbw/comm.
  sim::Tracer* tracer = nullptr;
};

// Discrete-event model of one virtual worker executing pipelined model
// parallelism over its partition (§4). Minibatches are injected subject to
// (a) the pipeline window: at most Nm in flight (minibatch p waits for
//     p - Nm to complete — the local staleness bound), and
// (b) the InjectionGate (global staleness / WSP).
// Stage task ordering follows the paper's three conditions via StageQueue;
// the last stage runs FW+BW of a minibatch as one fused task.
class VirtualWorkerSim {
 public:
  VirtualWorkerSim(int vw_id, sim::Simulator& simulator, const partition::Partition& partition,
                   InjectionGate& gate, const VirtualWorkerOptions& options);

  // Injects the initial minibatches; must be called once before Simulator::Run.
  void Start();

  int vw_id() const { return vw_id_; }
  int num_stages() const { return static_cast<int>(stages_.size()); }
  const partition::Partition& partition() const { return *partition_; }
  int nm() const { return options_.nm; }

  int64_t minibatches_completed() const { return completed_; }
  int64_t waves_completed() const { return completed_ / options_.nm; }
  sim::SimTime last_completion_time() const { return last_completion_time_; }
  // Completion timestamp of every minibatch, in order (used for steady-state
  // throughput measurement with warmup excluded).
  const std::vector<sim::SimTime>& completion_times() const { return completion_times_; }

  // Fraction of [from, to) stage q's GPU spent computing (excludes the
  // modeled communication-in portion of each task).
  double StageComputeUtilization(int q, sim::SimTime from, sim::SimTime to) const;
  // Max over stages, as plotted in Fig. 3.
  double MaxStageUtilization(sim::SimTime from, sim::SimTime to) const;

  // Total time injection was blocked by the gate, and the portion of it this
  // VW's GPUs were actually idle (averaged across stages) — the §8.4 metrics.
  double total_wait_s() const { return total_wait_s_; }
  double IdleDuringWait() const;

 private:
  struct Stage {
    explicit Stage(int index) : queue(index) {}
    StageQueue queue;
    bool busy = false;
    sim::BusyTracker compute_busy;
  };

  int64_t in_flight() const { return next_inject_ - 1 - completed_; }
  bool InjectionWindowOpen() const;
  void TryInject();
  void Inject(int64_t p);
  void TryDispatch(int q);
  void BeginTask(int q, const Task& task);
  void OnTaskDone(int q, const Task& task);
  void OnMinibatchComplete(int64_t p);
  // (comm_in_s, compute_s) of a task at its stage, jitter applied to compute.
  std::pair<double, double> TaskCost(const Task& task);

  int vw_id_;
  sim::Simulator* simulator_;
  const partition::Partition* partition_;
  InjectionGate* gate_;
  VirtualWorkerOptions options_;
  sim::Rng rng_;

  std::vector<Stage> stages_;
  int64_t next_inject_ = 1;
  int64_t completed_ = 0;
  sim::SimTime last_completion_time_ = 0.0;
  std::vector<sim::SimTime> completion_times_;
  double speed_bias_ = 1.0;   // persistent per-VW factor
  double wave_factor_ = 1.0;  // resampled at each wave boundary
  bool gate_blocked_ = false;
  sim::SimTime wait_started_ = 0.0;
  double total_wait_s_ = 0.0;
  std::vector<std::pair<sim::SimTime, sim::SimTime>> wait_windows_;
};

}  // namespace hetpipe::pipeline
