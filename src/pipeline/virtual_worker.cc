#include "pipeline/virtual_worker.h"

#include <algorithm>
#include <cassert>

namespace hetpipe::pipeline {

bool OpenGate::RequestInjection(int /*vw*/, int64_t /*p*/, std::function<void()> /*wake*/) {
  return true;
}

void OpenGate::OnWaveComplete(int /*vw*/, int64_t /*wave*/) {}

VirtualWorkerSim::VirtualWorkerSim(int vw_id, sim::Simulator& simulator,
                                   const partition::Partition& partition, InjectionGate& gate,
                                   const VirtualWorkerOptions& options)
    : vw_id_(vw_id),
      simulator_(&simulator),
      partition_(&partition),
      gate_(&gate),
      options_(options),
      rng_(options.seed + static_cast<uint64_t>(vw_id) * 0x9e3779b9ULL) {
  assert(partition.feasible);
  assert(options_.nm >= 1);
  stages_.reserve(partition.stages.size());
  for (int q = 0; q < partition.num_stages(); ++q) {
    stages_.emplace_back(q);
  }
  if (options_.speed_bias_cv > 0.0) {
    speed_bias_ = std::max(0.5, 1.0 + options_.speed_bias_cv * rng_.Normal());
  }
  if (options_.drift_cv > 0.0) {
    wave_factor_ = std::max(0.5, 1.0 + options_.drift_cv * rng_.Normal());
  }
}

void VirtualWorkerSim::Start() { TryInject(); }

bool VirtualWorkerSim::InjectionWindowOpen() const {
  if (options_.max_minibatches > 0 && next_inject_ > options_.max_minibatches) {
    return false;
  }
  return in_flight() < options_.nm;
}

void VirtualWorkerSim::TryInject() {
  while (InjectionWindowOpen()) {
    const int64_t p = next_inject_;
    const bool allowed = gate_->RequestInjection(vw_id_, p, [this] { TryInject(); });
    if (!allowed) {
      if (!gate_blocked_) {
        gate_blocked_ = true;
        wait_started_ = simulator_->now();
      }
      return;
    }
    if (gate_blocked_) {
      gate_blocked_ = false;
      const sim::SimTime now = simulator_->now();
      total_wait_s_ += now - wait_started_;
      wait_windows_.emplace_back(wait_started_, now);
    }
    Inject(p);
  }
}

void VirtualWorkerSim::Inject(int64_t p) {
  ++next_inject_;
  const int k = num_stages();
  Task task;
  task.minibatch = p;
  task.stage = 0;
  task.kind = (k == 1) ? TaskKind::kForwardBackward : TaskKind::kForward;
  stages_[0].queue.MakeAvailable(task);
  TryDispatch(0);
}

void VirtualWorkerSim::TryDispatch(int q) {
  Stage& stage = stages_[static_cast<size_t>(q)];
  if (stage.busy) {
    return;
  }
  std::optional<Task> task = stage.queue.PickNext();
  if (!task.has_value()) {
    return;
  }
  BeginTask(q, *task);
}

void VirtualWorkerSim::BeginTask(int q, const Task& task) {
  Stage& stage = stages_[static_cast<size_t>(q)];
  stage.busy = true;
  const auto [comm_s, compute_s] = TaskCost(task);
  const sim::SimTime start = simulator_->now();
  const sim::SimTime compute_start = start + comm_s;
  const sim::SimTime end = compute_start + compute_s;
  simulator_->ScheduleAt(end, [this, q, task, start, compute_start, end] {
    stages_[static_cast<size_t>(q)].busy = false;
    stages_[static_cast<size_t>(q)].compute_busy.AddBusy(compute_start, end);
    if (options_.tracer != nullptr) {
      if (compute_start > start) {
        options_.tracer->Add(
            {"recv " + ToString(task), "comm", task.stage, start, compute_start});
      }
      const char* category = task.kind == TaskKind::kForward
                                 ? "forward"
                                 : (task.kind == TaskKind::kBackward ? "backward" : "xfwbw");
      options_.tracer->Add({ToString(task), category, task.stage, compute_start, end});
    }
    OnTaskDone(q, task);
    TryDispatch(q);
  });
}

std::pair<double, double> VirtualWorkerSim::TaskCost(const Task& task) {
  const partition::StageAssignment& sa = partition_->stages[static_cast<size_t>(task.stage)];
  double comm = 0.0;
  double compute = 0.0;
  switch (task.kind) {
    case TaskKind::kForward:
      comm = sa.fwd_comm_in_s;
      compute = sa.fwd_compute_s;
      break;
    case TaskKind::kBackward:
      comm = sa.bwd_comm_in_s;
      compute = sa.bwd_compute_s;
      break;
    case TaskKind::kForwardBackward:
      comm = sa.fwd_comm_in_s;  // last stage has no backward comm-in
      compute = sa.fwd_compute_s + sa.bwd_compute_s;
      break;
  }
  if (options_.jitter_cv > 0.0) {
    const double factor = std::max(0.05, 1.0 + options_.jitter_cv * rng_.Normal());
    compute *= factor;
  }
  compute *= speed_bias_ * wave_factor_;
  return {comm, compute};
}

void VirtualWorkerSim::OnTaskDone(int q, const Task& task) {
  const int k = num_stages();
  switch (task.kind) {
    case TaskKind::kForward: {
      Task next;
      next.minibatch = task.minibatch;
      next.stage = q + 1;
      next.kind = (q + 1 == k - 1) ? TaskKind::kForwardBackward : TaskKind::kForward;
      stages_[static_cast<size_t>(q) + 1].queue.MakeAvailable(next);
      TryDispatch(q + 1);
      break;
    }
    case TaskKind::kForwardBackward: {
      if (k == 1) {
        OnMinibatchComplete(task.minibatch);
        break;
      }
      Task next;
      next.minibatch = task.minibatch;
      next.stage = q - 1;
      next.kind = TaskKind::kBackward;
      stages_[static_cast<size_t>(q) - 1].queue.MakeAvailable(next);
      TryDispatch(q - 1);
      break;
    }
    case TaskKind::kBackward: {
      if (q == 0) {
        OnMinibatchComplete(task.minibatch);
        break;
      }
      Task next;
      next.minibatch = task.minibatch;
      next.stage = q - 1;
      next.kind = TaskKind::kBackward;
      stages_[static_cast<size_t>(q) - 1].queue.MakeAvailable(next);
      TryDispatch(q - 1);
      break;
    }
  }
}

void VirtualWorkerSim::OnMinibatchComplete(int64_t p) {
  ++completed_;
  last_completion_time_ = simulator_->now();
  completion_times_.push_back(last_completion_time_);
  assert(p == completed_ && "backward passes must complete in minibatch order");
  (void)p;
  if (completed_ % options_.nm == 0) {
    if (options_.drift_cv > 0.0) {
      wave_factor_ = std::max(0.5, 1.0 + options_.drift_cv * rng_.Normal());
    }
    gate_->OnWaveComplete(vw_id_, completed_ / options_.nm - 1);
  }
  TryInject();
}

double VirtualWorkerSim::StageComputeUtilization(int q, sim::SimTime from, sim::SimTime to) const {
  return stages_[static_cast<size_t>(q)].compute_busy.Utilization(from, to);
}

double VirtualWorkerSim::MaxStageUtilization(sim::SimTime from, sim::SimTime to) const {
  double best = 0.0;
  for (int q = 0; q < num_stages(); ++q) {
    best = std::max(best, StageComputeUtilization(q, from, to));
  }
  return best;
}

double VirtualWorkerSim::IdleDuringWait() const {
  double idle = 0.0;
  for (const auto& [start, end] : wait_windows_) {
    double busy = 0.0;
    for (const Stage& stage : stages_) {
      busy += stage.compute_busy.Utilization(start, end) * (end - start);
    }
    const double window_total = (end - start) * static_cast<double>(stages_.size());
    idle += window_total - busy;
  }
  return stages_.empty() ? 0.0 : idle / static_cast<double>(stages_.size());
}

}  // namespace hetpipe::pipeline
