#pragma once

#include <optional>
#include <string>
#include <vector>

#include "pipeline/task.h"
#include "sim/trace.h"

namespace hetpipe::pipeline {

// Parses a task back out of the trace-event name format produced by
// ToString(Task) ("FW(M3,P2)"); nullopt for non-task events (e.g. comm).
std::optional<Task> ParseTaskEvent(const std::string& name);

// Result of validating a pipeline execution trace against the paper's
// scheduling rules (§4).
struct TraceCheckResult {
  bool ok = true;
  std::vector<std::string> violations;

  void Fail(std::string what) {
    ok = false;
    violations.push_back(std::move(what));
  }
};

// Replays a recorded execution trace of one virtual worker and checks:
//  1. forward tasks run in minibatch order at every stage (condition 1);
//  2. backward tasks run in minibatch order at every stage (condition 2);
//  3. one task at a time per stage (GPUs are not oversubscribed);
//  4. dataflow causality: FW(p,q) starts only after FW(p,q-1) finished and
//     BW(p,q) only after the backward work of stage q+1 finished;
//  5. the local staleness window: FW(p, stage 0) starts only after minibatch
//     p - Nm completed (at most Nm concurrent minibatches).
TraceCheckResult ValidatePipelineTrace(const std::vector<sim::TraceEvent>& events,
                                       int num_stages, int nm);

}  // namespace hetpipe::pipeline
