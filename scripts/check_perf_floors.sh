#!/usr/bin/env bash
# Perf-floor guard over a benchmark JSONL file (default: the committed
# BENCH_partitioner.json). The file's rows decide which floors apply — with
# generous margins, since absolute timings vary wildly across runners:
#
#   partitioner files (a partitioner_speed_summary row):
#   1. partitioner_speed_summary: the cold-solve geomean speedup of Solve over
#      SolveReference stays above a floor (default 4x; the committed
#      trajectory records ~11x), every point stayed bit-identical, and the
#      warm-solve scratch never grew.
#   2. partitioner_growth g16: the forced-beam bottleneck stays within 1.25x
#      of the exact optimum (the committed run records exactly 1.0).
#   3. partitioner_parallel (when present): every pooled solve stayed
#      bit-identical to its serial twin.
#
#   store files (a "bench":"store" row from store_bench):
#   4. the .hds store stays at least --store-ratio-floor (default 1.5x)
#      smaller than the equivalent JSONL (the committed run records ~4.6x),
#      and the read-back rows were identical to what was written.
#
# A file with neither row kind fails loudly — a floor check that silently
# checks nothing is worse than none.
#
# Usage: check_perf_floors.sh [FILE] [--geomean-floor=X] [--store-ratio-floor=X]
#
# CI runs this twice per file: hard on the committed file (a bad commit fails
# the build) and advisory (continue-on-error) on a freshly produced run, so a
# slow shared runner cannot fail the build but a real regression is loud in
# the log. Exit 0 when every floor holds, 1 otherwise.
set -u

file="BENCH_partitioner.json"
geomean_floor="4.0"
store_ratio_floor="1.5"
for arg in "$@"; do
  case "$arg" in
    --geomean-floor=*) geomean_floor="${arg#*=}" ;;
    --store-ratio-floor=*) store_ratio_floor="${arg#*=}" ;;
    --*) echo "unknown flag: $arg" >&2; exit 2 ;;
    *) file="$arg" ;;
  esac
done
if [ ! -r "$file" ]; then
  echo "error: cannot read $file" >&2
  exit 2
fi

fail=0

# Pulls "key":value off a JSONL line (numbers, bools, or quoted strings).
field() {  # $1=line $2=key
  printf '%s\n' "$1" | grep -o "\"$2\":[^,}]*" | head -n1 | cut -d: -f2- | tr -d '"'
}

summary=$(grep '"bench":"partitioner_speed_summary"' "$file" | tail -n1)
store=$(grep '"bench":"store"' "$file" | tail -n1)
if [ -z "$summary" ] && [ -z "$store" ]; then
  echo "FLOOR: no partitioner_speed_summary or store row in $file — nothing to check" >&2
  fail=1
fi
if [ -n "$summary" ]; then
  geomean=$(field "$summary" resnet152_paper_speedup_geomean)
  identical=$(field "$summary" all_identical)
  grows=$(field "$summary" scratch_grows_warm)
  if ! awk -v g="$geomean" -v f="$geomean_floor" 'BEGIN { exit !(g+0 >= f+0) }'; then
    echo "FLOOR: cold-solve speedup geomean $geomean below floor $geomean_floor" >&2
    fail=1
  fi
  if [ "$identical" != "true" ]; then
    echo "FLOOR: summary reports non-identical solve results" >&2
    fail=1
  fi
  if [ "$grows" != "0" ]; then
    echo "FLOOR: warm-solve scratch grew $grows time(s)" >&2
    fail=1
  fi
fi

g16=$(grep '"bench":"partitioner_growth"' "$file" | grep '"case":"g16-2rack"' | tail -n1)
if [ -n "$g16" ]; then
  ratio=$(field "$g16" beam_over_exact)
  if [ -z "$ratio" ] ||
     ! awk -v r="$ratio" 'BEGIN { exit !(r+0 >= 1.0 && r+0 <= 1.25) }'; then
    echo "FLOOR: g16-2rack beam_over_exact '${ratio:-missing}' outside [1.0, 1.25]" >&2
    fail=1
  fi
fi

while IFS= read -r row; do
  [ -z "$row" ] && continue
  if [ "$(field "$row" identical)" != "true" ]; then
    echo "FLOOR: parallel solve diverged from serial: $row" >&2
    fail=1
  fi
done < <(grep '"bench":"partitioner_parallel"' "$file" || true)

while IFS= read -r row; do
  [ -z "$row" ] && continue
  if [ "$(field "$row" thread_identical)" != "true" ]; then
    echo "FLOOR: width-sweep pooled solve diverged from serial: $row" >&2
    fail=1
  fi
done < <(grep '"bench":"partitioner_width_sweep"' "$file" || true)

if [ -n "$store" ]; then
  ratio=$(field "$store" jsonl_over_store)
  roundtrip=$(field "$store" roundtrip_identical)
  if [ -z "$ratio" ] ||
     ! awk -v r="$ratio" -v f="$store_ratio_floor" 'BEGIN { exit !(r+0 >= f+0) }'; then
    echo "FLOOR: store size ratio '${ratio:-missing}' below floor ${store_ratio_floor}x" >&2
    fail=1
  fi
  if [ "$roundtrip" != "true" ]; then
    echo "FLOOR: store round trip was not identical" >&2
    fail=1
  fi
fi

if [ "$fail" -eq 0 ]; then
  echo "perf floors hold in $file"
fi
exit "$fail"
