#!/usr/bin/env bash
# Verifies every relative markdown link in the repo's *.md files points at a
# file that exists. External (scheme://), mailto:, and pure-anchor links are
# skipped; an optional #fragment is stripped before the existence check.
# Exit 0 when all links resolve, 1 otherwise (each broken link on stderr).
set -u

cd "$(dirname "$0")/.."

fail=0
while IFS= read -r file; do
  dir=$(dirname "$file")
  # Pull out every inline-link target: [text](target)
  while IFS= read -r target; do
    case "$target" in
      '' | \#* | *://* | mailto:*) continue ;;
    esac
    path="${target%%#*}"
    [ -z "$path" ] && continue
    if [ ! -e "$dir/$path" ] && [ ! -e "$path" ]; then
      echo "broken link in $file: ($target)" >&2
      fail=1
    fi
  done < <(grep -o '\[[^][]*\]([^()[:space:]]*)' "$file" | sed 's/.*(\(.*\))/\1/')
done < <(git ls-files '*.md')

if [ "$fail" -eq 0 ]; then
  echo "all markdown links resolve"
fi
exit "$fail"
