#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy) over src/ using the compilation
# database a cmake configure exports.
#
# Usage: scripts/tidy.sh [build-dir] [file...]
#   build-dir  a configured build directory (default: build). Configure one
#              with: cmake -S . -B build
#   file...    restrict to specific sources (default: every src/**/*.cc).
# CI calls this with the files changed by the PR so the job stays fast; a
# plain local run checks the whole tree.
set -eu
cd "$(dirname "$0")/.."

build_dir=${1:-build}
[ $# -gt 0 ] && shift

if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "tidy: $build_dir/compile_commands.json not found; run: cmake -S . -B $build_dir" >&2
  exit 2
fi

tidy_bin=${CLANG_TIDY:-clang-tidy}
if ! command -v "$tidy_bin" >/dev/null 2>&1; then
  echo "tidy: $tidy_bin not on PATH (set CLANG_TIDY to a versioned binary)" >&2
  exit 2
fi

if [ $# -gt 0 ]; then
  files=("$@")
else
  mapfile -t files < <(find src -name '*.cc' | sort)
fi

# Filter to sources the database knows (headers and non-src paths a caller
# passed come along for free via the .cc that includes them).
checkable=()
for f in "${files[@]}"; do
  case "$f" in
    *.cc | *.cpp) checkable+=("$f") ;;
  esac
done
if [ ${#checkable[@]} -eq 0 ]; then
  echo "tidy: no compilable sources among the arguments; nothing to do"
  exit 0
fi

echo "tidy: checking ${#checkable[@]} file(s) with $tidy_bin"
"$tidy_bin" -p "$build_dir" --quiet "${checkable[@]}"
echo "tidy: clean"
