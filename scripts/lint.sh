#!/usr/bin/env bash
# Repo lint: style-and-safety rules that are cheaper to grep than to encode in
# clang-tidy, run as a CI job (and runnable locally from anywhere in the
# repo). Every rule prints the offending lines and the script exits non-zero
# if any rule fired.
#
# Rules:
#   1. No raw numeric parsing (atoi/stoi/strtol family) outside the
#      runner::Parse* helpers (src/runner/cli.cc): those calls silently map
#      junk to 0 or throw; flag parsing must reject junk loudly.
#   2. No std::endl in src/ or bench/: it flushes on every use, which is
#      measurable in the sweep hot paths; use '\n'.
#   3. Every TODO names a ROADMAP item (TODO(ROADMAP: ...)), so stale intent
#      can't hide in the tree.
#   4. Every src/ header starts its guard with #pragma once; no #ifndef-style
#      include guards (one convention, not two).
#   5. src/runner and src/serve use the annotated util::Mutex wrappers, not
#      raw std::mutex / std::shared_mutex / std::condition_variable —
#      otherwise -Wthread-safety has nothing to check (src/util/mutex.h is
#      the one place allowed to touch the native types).
#   6. bench/ binaries never write results through a raw std::ofstream: rows
#      go through the runner sink layer (--out/--json/--csv), where the
#      schema, the store, and sweep_query can see them. Deliberate non-result
#      files carry '// lint: ofstream-allowed (<why>)' on the line.
set -u
cd "$(dirname "$0")/.."

failures=0

fail() {
  echo "lint: $1" >&2
  shift
  printf '%s\n' "$@" >&2
  echo >&2
  failures=$((failures + 1))
}

# Strips // comments so prose *about* atoi does not trip rule 1 or 5.
strip_comments() {
  sed 's|//.*||'
}

# ---- Rule 1: raw numeric parsing ----
raw_parse=$(grep -rn --include='*.cc' --include='*.cpp' --include='*.h' \
                 -E '\b(atoi|atol|atoll|strtol|strtoul|strtoll|stoi|stol|stoll|stoul|stoull|stof|stod|stold)\s*\(' \
                 src bench examples \
              | grep -v '^src/runner/cli\.cc:' \
              | while IFS= read -r line; do
                  code=${line#*:*:}
                  stripped=$(printf '%s' "$code" | strip_comments)
                  printf '%s' "$stripped" | grep -qE '\b(atoi|atol|atoll|strtol|strtoul|strtoll|stoi|stol|stoll|stoul|stoull|stof|stod|stold)\s*\(' \
                    && printf '%s\n' "$line"
                done)
if [ -n "$raw_parse" ]; then
  fail "raw numeric parsing outside runner::Parse* helpers (use runner::ParseIntFlag / hw parsing):" "$raw_parse"
fi

# ---- Rule 2: std::endl in hot paths ----
endl=$(grep -rn --include='*.cc' --include='*.cpp' --include='*.h' \
            'std::endl' src bench || true)
if [ -n "$endl" ]; then
  fail "std::endl in src/ or bench/ (flushes every line; use '\\n'):" "$endl"
fi

# ---- Rule 3: TODOs must reference ROADMAP ----
todos=$(grep -rn --include='*.cc' --include='*.cpp' --include='*.h' --include='*.sh' \
             'TODO' src bench examples tests scripts \
          | grep -v '^scripts/lint\.sh:' \
          | grep -v 'TODO(ROADMAP:' || true)
if [ -n "$todos" ]; then
  fail "TODO without a ROADMAP reference (write TODO(ROADMAP: <item>)):" "$todos"
fi

# ---- Rule 4: header guards ----
guards=""
while IFS= read -r header; do
  if ! head -n1 "$header" | grep -q '#pragma once'; then
    guards="$guards$header: first line is not #pragma once
"
  fi
  ifndef=$(grep -n '#ifndef .*_H_\?$' "$header" || true)
  if [ -n "$ifndef" ]; then
    guards="$guards$header: uses an #ifndef include guard alongside the #pragma once convention
"
  fi
done < <(find src -name '*.h')
if [ -n "$guards" ]; then
  fail "header guard convention (#pragma once on line 1, no #ifndef guards):" "$guards"
fi

# ---- Rule 5: raw synchronization primitives in concurrent subsystems ----
raw_sync=$(grep -rn --include='*.cc' --include='*.h' \
                -E 'std::(mutex|shared_mutex|condition_variable)\b' \
                src/runner src/serve \
             | while IFS= read -r line; do
                 code=${line#*:*:}
                 stripped=$(printf '%s' "$code" | strip_comments)
                 printf '%s' "$stripped" | grep -qE 'std::(mutex|shared_mutex|condition_variable)\b' \
                   && printf '%s\n' "$line"
               done)
if [ -n "$raw_sync" ]; then
  fail "raw std synchronization in src/runner or src/serve (use the annotated util::Mutex family from src/util/mutex.h):" "$raw_sync"
fi

# ---- Rule 6: result writing in bench/ goes through the sink layer ----
# A bench opening its own std::ofstream for rows bypasses the schema,
# --out dispatch, and the store — results written that way can't be queried
# or round-tripped. Non-result files (expectation dumps, measurement
# targets) carry an explicit marker comment on the same line:
#   // lint: ofstream-allowed (<why>)
raw_ofstream=$(grep -rn --include='*.cc' 'std::ofstream' bench \
                | grep -v 'lint: ofstream-allowed' \
                | while IFS= read -r line; do
                    code=${line#*:*:}
                    stripped=$(printf '%s' "$code" | strip_comments)
                    printf '%s' "$stripped" | grep -q 'std::ofstream' \
                      && printf '%s\n' "$line"
                  done)
if [ -n "$raw_ofstream" ]; then
  fail "raw std::ofstream result writing in bench/ (emit rows via runner::BenchArgs --out/--json/--csv sinks, or mark the line '// lint: ofstream-allowed (<why>)'):" "$raw_ofstream"
fi

if [ "$failures" -ne 0 ]; then
  echo "lint: $failures rule(s) failed" >&2
  exit 1
fi
echo "lint: all rules pass"
