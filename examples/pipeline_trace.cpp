// Visualize the pipelined execution of a virtual worker as a Fig.-1-style
// Gantt chart, and export a Chrome/Perfetto trace for interactive viewing.
//
// Usage: pipeline_trace [nm] [out.json]
#include <cstdio>
#include <fstream>

#include "hw/cluster.h"
#include "runner/cli.h"
#include "model/profiler.h"
#include "model/resnet.h"
#include "partition/partitioner.h"
#include "pipeline/trace_check.h"
#include "pipeline/virtual_worker.h"
#include "sim/simulator.h"
#include "sim/trace.h"

int main(int argc, char** argv) {
  using namespace hetpipe;
  int nm = 4;
  if (argc > 1 && !runner::ParseIntFlag(argv[1], &nm)) {
    std::fprintf(stderr, "nm must be an integer, got \"%s\"\n", argv[1]);
    return 2;
  }

  const hw::Cluster cluster = hw::Cluster::Paper();
  const model::ModelGraph graph = model::BuildResNet152();
  const model::ModelProfile profile(graph, 32);
  const partition::Partitioner partitioner(profile, cluster);
  partition::PartitionOptions options;
  options.nm = nm;
  const partition::Partition partition = partitioner.Solve({0, 1, 2, 3}, options);
  if (!partition.feasible) {
    std::printf("no feasible partition at Nm=%d\n", nm);
    return 1;
  }

  sim::Tracer tracer;
  sim::Simulator simulator;
  pipeline::OpenGate gate;
  pipeline::VirtualWorkerOptions vopt;
  vopt.nm = nm;
  vopt.max_minibatches = 5 * nm;
  vopt.tracer = &tracer;
  pipeline::VirtualWorkerSim vw(0, simulator, partition, gate, vopt);
  vw.Start();
  simulator.Run();

  std::printf("Pipelined execution of %s on a VVVV virtual worker, Nm=%d\n", graph.name().c_str(),
              nm);
  std::printf("(F = forward, B = backward, X = fused FW+BW at the last stage,\n"
              " C = receiving activations/gradients, . = idle — compare with Fig. 1)\n\n");
  std::printf("%s\n", tracer
                          .AsciiGantt(0.0, simulator.now(), 110,
                                      {"GPU1", "GPU2", "GPU3", "GPU4"})
                          .c_str());

  const auto check = pipeline::ValidatePipelineTrace(tracer.events(), 4, nm);
  std::printf("scheduling-rule check (conditions 1-3 of Sec. 4, dataflow, staleness window): "
              "%s\n",
              check.ok ? "all hold" : check.violations.front().c_str());

  if (argc > 2) {
    std::ofstream file(argv[2]);
    tracer.ExportChromeJson(file);
    std::printf("Chrome trace written to %s (open in chrome://tracing or ui.perfetto.dev)\n",
                argv[2]);
  }
  return 0;
}
