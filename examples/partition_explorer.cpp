// Inspect how the memory-constrained min-max partitioner splits a model over
// a (possibly heterogeneous) virtual worker, and how the split shifts as Nm
// grows and memory pressure mounts.
//
// Usage: partition_explorer [gpu-codes] [model]
//   gpu-codes  one letter per GPU in the virtual worker (default "VRGQ")
//   model      resnet152 | vgg19 (default resnet152)
#include <cstdio>
#include <cstring>
#include <string>

#include "core/experiment.h"
#include "model/resnet.h"
#include "model/vgg.h"
#include "partition/partitioner.h"

int main(int argc, char** argv) {
  using namespace hetpipe;
  const std::string codes = argc > 1 ? argv[1] : "VRGQ";
  const bool vgg = argc > 2 && std::strcmp(argv[2], "vgg19") == 0;

  const hw::Cluster cluster = hw::Cluster::Paper();
  const model::ModelGraph graph = vgg ? model::BuildVgg19() : model::BuildResNet152();
  const model::ModelProfile profile(graph, 32);
  const partition::Partitioner partitioner(profile, cluster);
  const std::vector<int> gpus = core::PickGpusByCode(cluster, codes);

  std::printf("%s over a %s virtual worker (batch 32)\n\n", graph.Summary().c_str(),
              codes.c_str());

  for (int nm : {1, 3, 5, 7}) {
    partition::PartitionOptions options;
    options.nm = nm;
    const partition::Partition partition = partitioner.Solve(gpus, options);
    std::printf("Nm=%d: ", nm);
    if (!partition.feasible) {
      std::printf("infeasible (some stage exceeds its GPU memory)\n");
      continue;
    }
    std::printf("bottleneck %.1f ms, round trip %.1f ms\n", partition.bottleneck_time * 1e3,
                partition.sum_time * 1e3);
    for (int q = 0; q < partition.num_stages(); ++q) {
      const partition::StageAssignment& st = partition.stages[static_cast<size_t>(q)];
      std::printf("    P%d on %c: layers %-9s..%-9s compute %6.1f ms, comm-in %5.1f ms, "
                  "mem %5.2f / %.0f GiB\n",
                  q + 1, hw::CodeOf(st.gpu_type), graph.layer(st.first_layer).name.c_str(),
                  graph.layer(st.last_layer).name.c_str(),
                  (st.fwd_compute_s + st.bwd_compute_s) * 1e3,
                  (st.fwd_comm_in_s + st.bwd_comm_in_s) * 1e3,
                  static_cast<double>(st.memory_bytes) / (1ULL << 30),
                  static_cast<double>(st.memory_cap) / (1ULL << 30));
    }
  }
  std::printf("\nNote how rising Nm inflates the early stages' activation stash, forcing\n"
              "the partitioner to move layers toward the back of the pipeline.\n");
  return 0;
}
