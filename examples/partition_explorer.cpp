// Inspect how the memory-constrained min-max partitioner splits a model over
// a (possibly heterogeneous) virtual worker, and how the split shifts as Nm
// grows and memory pressure mounts. The Nm sweep runs on the sweep runner,
// so the solves are cached, pruned, and order-searched in parallel.
//
// Usage: partition_explorer [gpu-codes] [model] [--threads=N] [--json] [--csv]
//   gpu-codes  one letter per GPU in the virtual worker (default "VRGQ")
//   model      resnet152 | vgg19 (default resnet152)
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "runner/cli.h"

namespace {

int Run(int argc, char** argv) {
  using namespace hetpipe;
  runner::BenchArgs args = runner::BenchArgs::Parse(argc, argv);
  const std::string codes = !args.rest.empty() ? args.rest[0] : "VRGQ";
  const bool vgg = args.rest.size() > 1 && args.rest[1] == "vgg19";

  const core::ModelKind kind = vgg ? core::ModelKind::kVgg19 : core::ModelKind::kResNet152;
  const model::ModelGraph graph = core::BuildModel(kind);

  const std::vector<int> nms = {1, 3, 5, 7};
  std::vector<core::Experiment> experiments;
  for (int nm : nms) {
    core::Experiment e;
    e.kind = core::ExperimentKind::kPartitionOnly;
    e.model = kind;
    e.vw_codes = codes;
    e.config.nm = nm;
    e.simulate = false;
    experiments.push_back(std::move(e));
  }
  runner::SweepRunner sweep(args.sweep_options());
  const auto results = sweep.Run(experiments);

  std::printf("%s over a %s virtual worker (batch 32)\n\n", graph.Summary().c_str(),
              codes.c_str());

  for (size_t i = 0; i < results.size(); ++i) {
    const partition::Partition& partition = results[i].partition;
    std::printf("Nm=%d: ", nms[i]);
    if (!partition.feasible) {
      std::printf("infeasible (some stage exceeds its GPU memory)\n");
      continue;
    }
    std::printf("bottleneck %.1f ms, round trip %.1f ms\n", partition.bottleneck_time * 1e3,
                partition.sum_time * 1e3);
    for (int q = 0; q < partition.num_stages(); ++q) {
      const partition::StageAssignment& st = partition.stages[static_cast<size_t>(q)];
      std::printf("    P%d on %c: layers %-9s..%-9s compute %6.1f ms, comm-in %5.1f ms, "
                  "mem %5.2f / %.0f GiB\n",
                  q + 1, hw::CodeOf(st.gpu_type), graph.layer(st.first_layer).name.c_str(),
                  graph.layer(st.last_layer).name.c_str(),
                  (st.fwd_compute_s + st.bwd_compute_s) * 1e3,
                  (st.fwd_comm_in_s + st.bwd_comm_in_s) * 1e3,
                  static_cast<double>(st.memory_bytes) / (1ULL << 30),
                  static_cast<double>(st.memory_cap) / (1ULL << 30));
    }
  }
  std::printf("\nNote how rising Nm inflates the early stages' activation stash, forcing\n"
              "the partitioner to move layers toward the back of the pipeline.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return Run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n(gpu-codes is a string over V/R/G/Q, at most 4 of each)\n",
                 e.what());
    return 1;
  }
}
