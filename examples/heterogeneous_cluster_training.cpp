// Plan training for *your* heterogeneous cluster: describe the nodes on the
// command line and the example compares every allocation policy x parameter
// placement for both paper models.
//
// Usage: heterogeneous_cluster_training [node-codes [gpus-per-node]]
//   node-codes    one letter per node: V=TITAN V, R=TITAN RTX,
//                 G=RTX 2060, Q=Quadro P4000 (default "VRGQ")
//   gpus-per-node default 4
//
// Example: ./heterogeneous_cluster_training VVRG 4
#include <cstdio>
#include <string>

#include "core/hetpipe.h"
#include "runner/cli.h"
#include "dp/horovod.h"
#include "model/resnet.h"
#include "model/vgg.h"

int main(int argc, char** argv) {
  using namespace hetpipe;
  const std::string nodes = argc > 1 ? argv[1] : "VRGQ";
  int gpus_per_node = 4;
  if (argc > 2 && !runner::ParseIntFlag(argv[2], &gpus_per_node)) {
    std::fprintf(stderr, "gpus-per-node must be an integer, got \"%s\"\n", argv[2]);
    return 2;
  }

  hw::Cluster cluster(hw::ParseGpuCodes(nodes), gpus_per_node);
  std::printf("cluster: %s\n", cluster.ToString().c_str());

  for (const bool vgg : {false, true}) {
    const model::ModelGraph graph = vgg ? model::BuildVgg19() : model::BuildResNet152();
    std::printf("\n=== %s ===\n", graph.Summary().c_str());

    const model::ModelProfile profile(graph, 32);
    const dp::HorovodResult horovod = dp::SimulateHorovod(cluster, profile);
    std::printf("%-22s %s\n", "Horovod baseline:", horovod.ToString().c_str());

    struct Setup {
      const char* label;
      cluster::AllocationPolicy allocation;
      wsp::PlacementPolicy placement;
    };
    const Setup setups[] = {
        {"HetPipe NP", cluster::AllocationPolicy::kNodePartition,
         wsp::PlacementPolicy::kRoundRobin},
        {"HetPipe ED", cluster::AllocationPolicy::kEqualDistribution,
         wsp::PlacementPolicy::kRoundRobin},
        {"HetPipe ED-local", cluster::AllocationPolicy::kEqualDistribution,
         wsp::PlacementPolicy::kLocal},
    };
    for (const Setup& setup : setups) {
      core::HetPipeConfig config;
      config.allocation = setup.allocation;
      config.placement = setup.placement;
      config.jitter_cv = 0.1;
      const core::HetPipeReport report = core::HetPipe(cluster, graph, config).Run();
      if (!report.feasible) {
        std::printf("%-22s infeasible: %s\n", setup.label, report.infeasible_reason.c_str());
        continue;
      }
      std::printf("%-22s %7.0f img/s  (Nm=%d, %zu VWs)\n", setup.label,
                  report.throughput_img_s, report.nm, report.vws.size());
    }
    // HD needs the 4x4 shape.
    if (cluster.num_nodes() == 4 && cluster.gpus_per_node() == 4) {
      core::HetPipeConfig config;
      config.allocation = cluster::AllocationPolicy::kHybridDistribution;
      config.jitter_cv = 0.1;
      const core::HetPipeReport report = core::HetPipe(cluster, graph, config).Run();
      if (report.feasible) {
        std::printf("%-22s %7.0f img/s  (Nm=%d)\n", "HetPipe HD", report.throughput_img_s,
                    report.nm);
      }
    }
  }
  return 0;
}
