// Hands-on WSP lab: real multi-threaded SGD under the Wave Synchronous
// Parallel model. Shows the loss trajectory, the staleness every worker
// actually observed, and how it stays inside the bound of §5.
#include <cstdio>

#include "train/data.h"
#include "train/model_zoo.h"
#include "train/wsp_trainer.h"
#include "wsp/sync_policy.h"

int main() {
  using namespace hetpipe;
  const train::Dataset data = train::MakeBinaryBlobs(1000, 6, 3.0, 99);
  const train::LogisticRegressionModel model(6);

  std::printf("WSP minibatch lab — logistic regression, 4 virtual workers\n\n");

  for (const auto& [nm, d] : {std::pair{1, 0}, {4, 0}, {4, 4}}) {
    train::TrainerOptions options = train::WspOptions(/*num_workers=*/4, /*waves=*/120, nm, d);
    options.worker.lr = 0.2;
    options.worker.batch = 16;
    const train::TrainerResult result = train::TrainWsp(model, data, options);

    std::printf("Nm=%d D=%d  (s_local=%lld, s_global bound=%lld)\n", nm, d,
                static_cast<long long>(wsp::LocalStaleness(nm)),
                static_cast<long long>(wsp::GlobalStaleness(nm, d)));
    std::printf("  final loss %.5f after %lld minibatches\n", result.final_loss,
                static_cast<long long>(result.total_minibatches));
    std::printf("  staleness: mean %.1f, worst %lld, within bound: %s\n",
                result.mean_observed_staleness,
                static_cast<long long>(result.worst_observed_staleness),
                result.staleness_within_bound ? "yes" : "NO");
    std::printf("  loss curve:");
    const size_t n = result.loss_curve.size();
    for (size_t i = 0; i < n; i += std::max<size_t>(1, n / 6)) {
      std::printf("  w%lld:%.4f", static_cast<long long>(result.loss_curve[i].first),
                  result.loss_curve[i].second);
    }
    std::printf("\n\n");
  }

  std::printf("All three configurations converge; pipeline staleness (Nm>1) and clock\n"
              "distance (D>0) slow statistical progress slightly but never break the\n"
              "bound — the empirical counterpart of the Theorem 1 guarantee.\n");
  return 0;
}
