// Explore the WSP staleness trade-off: sweeping the clock-distance threshold
// D trades synchronization stalls (throughput) against parameter staleness
// (statistical efficiency). Prints simulated throughput, observed staleness,
// and estimated time-to-target-accuracy for each D.
#include <cstdio>

#include "core/convergence.h"
#include "core/hetpipe.h"
#include "model/vgg.h"
#include "wsp/sync_policy.h"

int main() {
  using namespace hetpipe;
  const hw::Cluster cluster = hw::Cluster::Paper();
  const model::ModelGraph graph = model::BuildVgg19();
  const core::ConvergenceModel conv = core::ConvergenceModel::For(graph.family());
  constexpr double kTarget = 0.67;

  std::printf("WSP staleness trade-off — %s, ED-local, 4 virtual workers\n\n",
              graph.name().c_str());
  std::printf("%6s %10s %12s %14s %16s\n", "D", "img/s", "wait (s)", "staleness",
              "hours to 67%");

  for (int d : {0, 1, 2, 4, 8, 16, 32}) {
    core::HetPipeConfig config;
    config.allocation = cluster::AllocationPolicy::kEqualDistribution;
    config.placement = wsp::PlacementPolicy::kLocal;
    config.sync = wsp::SyncPolicy::Wsp(d);
    config.jitter_cv = 0.15;
    config.waves = 50;
    const core::HetPipeReport report = core::HetPipe(cluster, graph, config).Run();
    core::ConvergenceInput input;
    input.throughput_img_s = report.throughput_img_s;
    input.avg_missing_updates = report.AvgMissingUpdates();
    std::printf("%6d %10.0f %12.2f %14.1f %16.1f\n", d, report.throughput_img_s,
                report.total_wait_s, input.avg_missing_updates,
                conv.HoursToAccuracy(input, kTarget));
  }

  std::printf("\nSmall D wastes time in synchronization stalls; huge D lets weights go\n"
              "stale and wastes epochs. The paper (Fig. 6) finds D=4 the sweet spot.\n");
  return 0;
}
