// Quickstart: train ResNet-152 on the paper's 16-GPU heterogeneous cluster
// with HetPipe (ED allocation, local parameter placement, D=0) and compare
// against the Horovod baseline.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>

#include "core/hetpipe.h"
#include "dp/horovod.h"
#include "model/resnet.h"

int main() {
  using namespace hetpipe;

  // 1. Describe the cluster: 4 nodes x 4 GPUs (TITAN V / TITAN RTX /
  //    RTX 2060 / Quadro P4000), PCIe inside nodes, Infiniband between.
  const hw::Cluster cluster = hw::Cluster::Paper();
  std::printf("cluster: %s\n", cluster.ToString().c_str());

  // 2. Pick a model. ResNet-152 at batch 32 does not fit the 6 GiB RTX 2060,
  //    so plain data parallelism cannot use those GPUs — HetPipe can.
  const model::ModelGraph graph = model::BuildResNet152();
  std::printf("model:   %s\n\n", graph.Summary().c_str());

  // 3. Configure HetPipe: equal-distribution virtual workers (one GPU of
  //    every type each), parameters served from each partition's own node,
  //    BSP-like WSP (D=0).
  core::HetPipeConfig config;
  config.allocation = cluster::AllocationPolicy::kEqualDistribution;
  config.placement = wsp::PlacementPolicy::kLocal;
  config.sync = wsp::SyncPolicy::Wsp(0);

  const core::HetPipeReport report = core::HetPipe(cluster, graph, config).Run();
  if (!report.feasible) {
    std::printf("HetPipe infeasible: %s\n", report.infeasible_reason.c_str());
    return 1;
  }
  std::printf("HetPipe: %.0f img/s with %zu virtual workers, Nm=%d "
              "(s_local=%lld, s_global=%lld)\n",
              report.throughput_img_s, report.vws.size(), report.nm,
              static_cast<long long>(report.s_local), static_cast<long long>(report.s_global));
  for (size_t v = 0; v < report.vws.size(); ++v) {
    const core::VwReport& vw = report.vws[v];
    std::printf("  VW%zu: %.0f img/s, max stage utilization %.0f%%\n", v + 1,
                vw.throughput_img_s, 100.0 * vw.max_stage_utilization);
  }

  // 4. Baseline: BSP data parallelism over AllReduce (Horovod).
  const model::ModelProfile profile(graph, config.batch_size);
  const dp::HorovodResult horovod = dp::SimulateHorovod(cluster, profile);
  std::printf("\nHorovod: %s\n", horovod.ToString().c_str());
  std::printf("\nHetPipe speedup: %.2fx (and it uses the %d GPUs Horovod had to exclude)\n",
              report.throughput_img_s / horovod.throughput_img_s, horovod.num_excluded);
  return 0;
}
